//! A minimal one-shot rendezvous: the worker deposits one value, the
//! requesting thread blocks until it arrives. Built on `Mutex` + `Condvar`
//! (no vendored channel dependency); dropping the sender without sending
//! wakes the receiver with `None` instead of deadlocking it, and locking
//! is poison-free (see [`crate::sync`]) so a panicking worker can never
//! cascade into the waiting caller.

use crate::sync;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Slot<T> {
    value: Mutex<(Option<T>, bool)>,
    ready: Condvar,
}

/// Producing half — consumed by [`Sender::send`].
pub(crate) struct Sender<T> {
    slot: Arc<Slot<T>>,
}

/// Consuming half — consumed by [`Receiver::recv`].
pub(crate) struct Receiver<T> {
    slot: Arc<Slot<T>>,
}

/// `recv_timeout` gave up before the sender resolved the slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct TimedOut;

/// Create a connected sender/receiver pair.
pub(crate) fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let slot = Arc::new(Slot {
        value: Mutex::new((None, false)),
        ready: Condvar::new(),
    });
    (
        Sender {
            slot: Arc::clone(&slot),
        },
        Receiver { slot },
    )
}

impl<T> Sender<T> {
    /// Deposit the value and wake the receiver. Never fails: if the
    /// receiver is already gone (ticket dropped, or its timeout expired),
    /// the value parks in the slot and is freed with it.
    pub(crate) fn send(self, value: T) {
        let mut guard = sync::lock(&self.slot.value);
        guard.0 = Some(value);
        guard.1 = true;
        drop(guard);
        self.slot.ready.notify_one();
        // Drop now runs too; its re-mark + notify are harmless after a
        // send, and skipping it (mem::forget) would leak the slot Arc.
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut guard = sync::lock(&self.slot.value);
        guard.1 = true;
        drop(guard);
        self.slot.ready.notify_one();
    }
}

impl<T> Receiver<T> {
    /// Block until the value arrives; `None` means the sender was dropped
    /// without sending (the request was abandoned).
    pub(crate) fn recv(self) -> Option<T> {
        let mut guard = sync::lock(&self.slot.value);
        while !guard.1 {
            guard = sync::wait(&self.slot.ready, guard);
        }
        guard.0.take()
    }

    /// Like [`recv`](Self::recv), but give up after `timeout`. The
    /// receiver is consumed either way; a value sent after the timeout is
    /// freed with the slot when the sender lets go of it.
    pub(crate) fn recv_timeout(self, timeout: Duration) -> Result<Option<T>, TimedOut> {
        let deadline = Instant::now() + timeout;
        let mut guard = sync::lock(&self.slot.value);
        while !guard.1 {
            let now = Instant::now();
            if now >= deadline {
                return Err(TimedOut);
            }
            let (g, _timed_out) = sync::wait_timeout(&self.slot.ready, guard, deadline - now);
            // Re-check the predicate rather than trusting the timeout
            // flag: a send can race the wakeup.
            guard = g;
        }
        Ok(guard.0.take())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn delivers_across_threads() {
        let (tx, rx) = channel();
        let h = std::thread::spawn(move || rx.recv());
        tx.send(99);
        assert_eq!(h.join().unwrap(), Some(99));
    }

    #[test]
    fn dropped_sender_unblocks_receiver() {
        let (tx, rx) = channel::<u32>();
        drop(tx);
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn send_does_not_leak_the_slot() {
        let (tx, rx) = channel::<u32>();
        let slot = Arc::downgrade(&tx.slot);
        tx.send(7);
        assert_eq!(rx.recv(), Some(7));
        assert!(
            slot.upgrade().is_none(),
            "slot still alive after both halves are gone"
        );
    }

    #[test]
    fn recv_timeout_times_out_on_silence() {
        let (tx, rx) = channel::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(TimedOut),
            "nobody sent, must time out"
        );
        drop(tx);
    }

    #[test]
    fn recv_timeout_returns_early_on_send() {
        let (tx, rx) = channel();
        let h = std::thread::spawn(move || rx.recv_timeout(Duration::from_secs(30)));
        tx.send(5);
        assert_eq!(h.join().unwrap(), Ok(Some(5)));
    }

    #[test]
    fn recv_timeout_sees_dropped_sender() {
        let (tx, rx) = channel::<u32>();
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_secs(30)), Ok(None));
    }

    #[test]
    fn send_after_timeout_does_not_leak_or_panic() {
        // The drain-time race: the caller's wait_timeout expires and drops
        // the receiver, then the worker answers anyway. The late value must
        // park in the slot and be freed with it — no panic, no leak.
        let (tx, rx) = channel::<Vec<u32>>();
        let slot = Arc::downgrade(&tx.slot);
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(TimedOut));
        tx.send(vec![1, 2, 3]);
        assert!(
            slot.upgrade().is_none(),
            "slot (and the late value) must be freed once the sender is gone"
        );
    }

    #[test]
    fn send_after_receiver_drop_is_harmless() {
        let (tx, rx) = channel::<u32>();
        drop(rx);
        tx.send(9); // must not panic
    }

    #[test]
    fn poisoned_slot_still_delivers() {
        // A panic while holding the slot lock (fault injection can do
        // this) must not cascade into the receiver.
        let (tx, rx) = channel::<u32>();
        let slot = Arc::clone(&tx.slot);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _g = slot.value.lock().unwrap();
            panic!("poison the slot");
        }));
        let h = std::thread::spawn(move || rx.recv());
        tx.send(11);
        assert_eq!(h.join().unwrap(), Some(11));
    }
}
