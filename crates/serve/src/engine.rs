//! The throughput engine: worker pool + bounded queue + micro-batcher.
//!
//! # Data flow
//!
//! ```text
//! callers ──submit()──► bounded queue ──pop_up_to(max_batch)──► worker
//!    ▲                      │ full?                               │
//!    └── Submit::Rejected ◄─┘                 coalesce by context │
//!                                                one batched      │
//! callers ◄── oneshot ◄── scatter per-request ◄── frozen forward ◄┘
//! ```
//!
//! # Why coalescing pays
//!
//! The frozen forward's cost is `trunk + n·per_candidate`: the user-side
//! trunk (PEC attention over the history sequences) is independent of the
//! candidate count, and the per-candidate head runs as one batched matmul
//! whose efficiency *grows* with `n` (PR 1 measured the batched path at
//! 8.7× the per-candidate oracle for n = 1 but only 2.3× at n = 64 — small
//! requests leave most of the batched win on the table). Concurrent
//! requests that share a context template (same user, day, and history
//! sequences — retries, pagination, parallel widgets of one session) can
//! therefore be merged into a single `FrozenOdNet` forward: one trunk
//! instead of `r`, and one `Σnᵢ`-row head matmul instead of `r` small ones.
//!
//! # Bit-identity
//!
//! A coalesced forward returns exactly the scores of the per-request
//! forwards: the trunk depends only on the (shared) context, each
//! candidate's `q` row is assembled independently, and every kernel in
//! `od_tensor::infer` accumulates each output element in an order that
//! does not depend on how many other rows are in the batch. The engine is
//! one more link in the live → batched → frozen oracle chain, asserted by
//! `tests/engine_equivalence.rs` and the `ci.sh` throughput smoke.

use crate::oneshot;
use crate::queue::Queue;
use od_tensor::infer::Workspace;
use odnet_core::{FrozenOdNet, GroupInput};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Coalesced-batch-size histogram width: index `i` counts forwards that
/// merged `i` requests, with the last bucket absorbing everything larger.
pub const HIST_BUCKETS: usize = 65;

/// Tuning knobs of the [`Engine`].
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Worker threads scoring requests. `0` is allowed for tests that need
    /// a queue nobody drains (e.g. deterministic backpressure).
    pub workers: usize,
    /// Bounded queue capacity; a full queue rejects instead of growing.
    pub queue_capacity: usize,
    /// Maximum requests a worker drains per wakeup (and therefore the
    /// largest possible coalesced batch).
    pub max_batch: usize,
    /// Merge same-context requests into one batched forward. Disabling
    /// this scores each request individually — the "before" side of the
    /// throughput benchmark.
    pub coalesce: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            queue_capacity: 1024,
            max_batch: 64,
            coalesce: true,
        }
    }
}

/// Outcome of [`Engine::submit`].
pub enum Submit {
    /// The request was queued; wait on the ticket for its scores.
    Accepted(Ticket),
    /// The queue was full (or shutting down) — the group is handed back so
    /// the caller can retry, shed load, or fail the request upstream.
    Rejected(GroupInput),
}

/// Pending response handle; one per accepted request.
pub struct Ticket {
    rx: oneshot::Receiver<Vec<(f32, f32)>>,
}

impl Ticket {
    /// Block until the request's per-candidate `(p^O, p^D)` scores arrive.
    ///
    /// # Panics
    /// Panics if the engine dropped the request without scoring it, which
    /// only happens when a worker thread panicked mid-batch.
    pub fn wait(self) -> Vec<(f32, f32)> {
        self.rx.recv().expect("serving engine dropped the request")
    }
}

struct Request {
    group: GroupInput,
    /// Taken (exactly once) when the request is answered.
    tx: Option<oneshot::Sender<Vec<(f32, f32)>>>,
}

/// Monotonic counters shared by workers and the [`Engine`] handle.
struct StatsInner {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    forwards: AtomicU64,
    coalesced_requests: AtomicU64,
    hist: [AtomicU64; HIST_BUCKETS],
}

impl Default for StatsInner {
    fn default() -> Self {
        StatsInner {
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            forwards: AtomicU64::new(0),
            coalesced_requests: AtomicU64::new(0),
            hist: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Snapshot of the engine's counters.
#[derive(Clone, Debug, serde::Serialize)]
pub struct EngineStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests turned away by backpressure.
    pub rejected: u64,
    /// Requests scored and answered.
    pub completed: u64,
    /// Frozen forwards executed (a coalesced forward counts once).
    pub forwards: u64,
    /// Requests that shared their forward with at least one other request.
    pub coalesced_requests: u64,
    /// `batch_hist[i]` = forwards that merged `i` requests (last bucket
    /// absorbs larger batches).
    pub batch_hist: Vec<u64>,
}

impl EngineStats {
    /// Mean requests merged per forward — 1.0 means coalescing never
    /// engaged, larger is better.
    pub fn mean_requests_per_forward(&self) -> f64 {
        if self.forwards == 0 {
            return 0.0;
        }
        self.completed as f64 / self.forwards as f64
    }
}

struct Shared {
    queue: Queue<Request>,
    model: Arc<FrozenOdNet>,
    stats: StatsInner,
    max_batch: usize,
    coalesce: bool,
}

/// A concurrent scoring engine over a frozen artifact. Submitting is
/// `&self`, so one engine handle is shared freely across caller threads;
/// dropping the handle drains the queue and joins the workers.
pub struct Engine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Spawn `config.workers` scoring threads over `model`.
    pub fn new(model: Arc<FrozenOdNet>, config: EngineConfig) -> Engine {
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        let shared = Arc::new(Shared {
            queue: Queue::new(config.queue_capacity),
            model,
            stats: StatsInner::default(),
            max_batch: config.max_batch,
            coalesce: config.coalesce,
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("od-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn serving worker")
            })
            .collect();
        Engine { shared, workers }
    }

    /// Enqueue one scoring request. Never blocks: when the queue is full
    /// the group is handed back as [`Submit::Rejected`].
    pub fn submit(&self, group: GroupInput) -> Submit {
        let (tx, rx) = oneshot::channel();
        match self.shared.queue.try_push(Request {
            group,
            tx: Some(tx),
        }) {
            Ok(()) => {
                self.shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
                Submit::Accepted(Ticket { rx })
            }
            Err(req) => {
                self.shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                Submit::Rejected(req.group)
            }
        }
    }

    /// Convenience: submit and block for the scores. `Err` returns the
    /// group on backpressure.
    // The Err variant IS the handed-back request (so the caller can retry
    // without cloning), not an error type worth boxing.
    #[allow(clippy::result_large_err)]
    pub fn score(&self, group: GroupInput) -> Result<Vec<(f32, f32)>, GroupInput> {
        match self.submit(group) {
            Submit::Accepted(ticket) => Ok(ticket.wait()),
            Submit::Rejected(group) => Err(group),
        }
    }

    /// Snapshot the engine's counters.
    pub fn stats(&self) -> EngineStats {
        let s = &self.shared.stats;
        EngineStats {
            submitted: s.submitted.load(Ordering::Relaxed),
            rejected: s.rejected.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            forwards: s.forwards.load(Ordering::Relaxed),
            coalesced_requests: s.coalesced_requests.load(Ordering::Relaxed),
            batch_hist: s.hist.iter().map(|h| h.load(Ordering::Relaxed)).collect(),
        }
    }

    /// Worker threads serving this engine.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Whether cross-request micro-batching is enabled.
    pub fn coalescing(&self) -> bool {
        self.shared.coalesce
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shared.queue.close();
        for h in self.workers.drain(..) {
            // A worker that panicked already surfaced its message; don't
            // double-panic inside drop.
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut ws = Workspace::new();
    let mut batch: Vec<Request> = Vec::new();
    let mut out: Vec<(f32, f32)> = Vec::new();
    let mut merged = empty_group();
    let mut plan = CoalescePlan::default();
    while shared.queue.pop_up_to(shared.max_batch, &mut batch) {
        if shared.coalesce {
            plan.build(&batch);
        } else {
            plan.singletons(batch.len());
        }
        for set in plan.sets() {
            score_set(shared, &mut ws, &mut out, &mut merged, &mut batch, set);
        }
        // Senders were consumed by scatter; clear for the next drain.
        batch.clear();
    }
}

/// Score one coalesced set of requests (indices into `batch`) and scatter
/// the per-request score slices back through their oneshots.
fn score_set(
    shared: &Shared,
    ws: &mut Workspace,
    out: &mut Vec<(f32, f32)>,
    merged: &mut GroupInput,
    batch: &mut [Request],
    set: &[usize],
) {
    let stats = &shared.stats;
    stats.forwards.fetch_add(1, Ordering::Relaxed);
    stats.hist[set.len().min(HIST_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
    if set.len() == 1 {
        let req = &mut batch[set[0]];
        shared.model.score_group_into(ws, &req.group, out);
        // Count before sending: the oneshot's lock handoff then publishes
        // the increment to whoever observes the response.
        stats.completed.fetch_add(1, Ordering::Relaxed);
        req.take_tx().send(out.clone());
        return;
    }
    stats
        .coalesced_requests
        .fetch_add(set.len() as u64, Ordering::Relaxed);
    // One forward over the concatenated candidate lists. The context is
    // shared by construction (that is what the plan grouped on).
    copy_context(merged, &batch[set[0]].group);
    merged.candidates.clear();
    for &i in set {
        merged
            .candidates
            .extend_from_slice(&batch[i].group.candidates);
    }
    shared.model.score_group_into(ws, merged, out);
    let mut offset = 0;
    for &i in set {
        let req = &mut batch[i];
        let n = req.group.candidates.len();
        stats.completed.fetch_add(1, Ordering::Relaxed);
        req.take_tx().send(out[offset..offset + n].to_vec());
        offset += n;
    }
}

impl Request {
    /// Move the sender out (each request is answered exactly once).
    fn take_tx(&mut self) -> oneshot::Sender<Vec<(f32, f32)>> {
        self.tx.take().expect("request answered twice")
    }
}

/// Reusable grouping of a drained batch into same-context sets. Arrival
/// order is preserved both across sets (by first member) and within one.
#[derive(Default)]
struct CoalescePlan {
    /// Flattened member indices.
    members: Vec<usize>,
    /// `(start, len)` ranges into `members`, one per set.
    ranges: Vec<(usize, usize)>,
    /// Scratch: context hash → set indices with that hash.
    index: HashMap<u64, Vec<usize>>,
}

impl CoalescePlan {
    fn clear(&mut self) {
        self.members.clear();
        self.ranges.clear();
        // Drop the keys too: a batch holds at most `max_batch` distinct
        // contexts, so rebuilding the small map per drain is cheap, while
        // keeping every context hash ever seen would grow without bound.
        self.index.clear();
    }

    /// One set per request — the coalescing-disabled path.
    fn singletons(&mut self, n: usize) {
        self.clear();
        for i in 0..n {
            self.members.push(i);
            self.ranges.push((i, 1));
        }
    }

    /// Group `batch` by scoring context. Two requests land in the same set
    /// only if their contexts compare equal field-by-field (the hash is
    /// just a prefilter, so collisions cannot merge distinct contexts).
    fn build(&mut self, batch: &[Request]) {
        self.clear();
        // First pass: assign each request a set id.
        let mut set_of = Vec::with_capacity(batch.len());
        let mut set_sizes: Vec<usize> = Vec::new();
        let mut first_of_set: Vec<usize> = Vec::new();
        for (i, req) in batch.iter().enumerate() {
            let h = context_hash(&req.group);
            let bucket = self.index.entry(h).or_default();
            let found = bucket
                .iter()
                .copied()
                .find(|&s| same_context(&batch[first_of_set[s]].group, &req.group));
            let s = match found {
                Some(s) => s,
                None => {
                    let s = set_sizes.len();
                    set_sizes.push(0);
                    first_of_set.push(i);
                    bucket.push(s);
                    s
                }
            };
            set_sizes[s] += 1;
            set_of.push(s);
        }
        // Second pass: lay the members out contiguously per set.
        let mut starts = Vec::with_capacity(set_sizes.len());
        let mut acc = 0;
        for &size in &set_sizes {
            starts.push(acc);
            self.ranges.push((acc, size));
            acc += size;
        }
        self.members.resize(acc, 0);
        let mut cursor = starts;
        for (i, &s) in set_of.iter().enumerate() {
            self.members[cursor[s]] = i;
            cursor[s] += 1;
        }
    }

    fn sets(&self) -> impl Iterator<Item = &[usize]> {
        self.ranges
            .iter()
            .map(move |&(start, len)| &self.members[start..start + len])
    }
}

// The context of a request is every [`GroupInput`] field except the
// candidates. `day` and the event-day sequences do not enter the frozen
// forward, but they are part of the template a caller submitted, so they
// participate in equality — only literally identical templates merge.

fn context_hash(g: &GroupInput) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    g.user.hash(&mut h);
    g.day.hash(&mut h);
    g.current_city.hash(&mut h);
    g.lt_origins.hash(&mut h);
    g.lt_dests.hash(&mut h);
    g.lt_days.hash(&mut h);
    g.st_origins.hash(&mut h);
    g.st_dests.hash(&mut h);
    g.st_days.hash(&mut h);
    h.finish()
}

fn same_context(a: &GroupInput, b: &GroupInput) -> bool {
    a.user == b.user
        && a.day == b.day
        && a.current_city == b.current_city
        && a.lt_origins == b.lt_origins
        && a.lt_dests == b.lt_dests
        && a.lt_days == b.lt_days
        && a.st_origins == b.st_origins
        && a.st_dests == b.st_dests
        && a.st_days == b.st_days
}

/// Copy `src`'s context into `dst`, reusing `dst`'s sequence allocations.
fn copy_context(dst: &mut GroupInput, src: &GroupInput) {
    dst.user = src.user;
    dst.day = src.day;
    dst.current_city = src.current_city;
    dst.lt_origins.clone_from(&src.lt_origins);
    dst.lt_dests.clone_from(&src.lt_dests);
    dst.lt_days.clone_from(&src.lt_days);
    dst.st_origins.clone_from(&src.st_origins);
    dst.st_dests.clone_from(&src.st_dests);
    dst.st_days.clone_from(&src.st_days);
}

fn empty_group() -> GroupInput {
    GroupInput {
        user: od_hsg::UserId(0),
        day: 0,
        current_city: od_hsg::CityId(0),
        lt_origins: Vec::new(),
        lt_dests: Vec::new(),
        lt_days: Vec::new(),
        st_origins: Vec::new(),
        st_dests: Vec::new(),
        st_days: Vec::new(),
        candidates: Vec::new(),
    }
}
