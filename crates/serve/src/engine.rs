//! The throughput engine: worker pool + bounded queue + micro-batcher,
//! under supervision.
//!
//! # Data flow
//!
//! ```text
//! callers ──submit()──► validate ──► bounded queue ──pop_up_to──► worker
//!    ▲                     │ bad ids?      │ full?                  │
//!    │   Submit::Invalid ◄─┘              │        drop expired,   │
//!    │      Submit::Rejected ◄────────────┘        coalesce, score │
//!    │                                             (catch_unwind)  │
//! callers ◄── oneshot Result ◄── scatter / typed error ◄───────────┘
//!                                                                  │ panic?
//!                  supervisor ◄── worker death ────────────────────┘
//!                      └── join + respawn, EngineHealth counters
//! ```
//!
//! # Failure model (DESIGN.md §10)
//!
//! Every accepted request resolves exactly once, as
//! `Result<Vec<(f32, f32)>, ServeError>`: invalid inputs are refused at
//! admission ([`Submit::Invalid`]), backpressure hands the group back
//! ([`Submit::Rejected`]), expired deadlines are dropped at drain time,
//! and a worker panic mid-batch resolves the batch's unanswered tickets
//! with [`ServeError::WorkerPanicked`] while the supervisor thread joins
//! the corpse and respawns a replacement. [`Engine::health`] exposes the
//! live-worker count and fault counters.
//!
//! # Why coalescing pays
//!
//! The frozen forward's cost is `trunk + n·per_candidate`: the user-side
//! trunk (PEC attention over the history sequences) is independent of the
//! candidate count, and the per-candidate head runs as one batched matmul
//! whose efficiency *grows* with `n` (PR 1 measured the batched path at
//! 8.7× the per-candidate oracle for n = 1 but only 2.3× at n = 64 — small
//! requests leave most of the batched win on the table). Concurrent
//! requests that share a context template (same user, day, and history
//! sequences — retries, pagination, parallel widgets of one session) can
//! therefore be merged into a single `FrozenOdNet` forward: one trunk
//! instead of `r`, and one `Σnᵢ`-row head matmul instead of `r` small ones.
//!
//! # Bit-identity
//!
//! A coalesced forward returns exactly the scores of the per-request
//! forwards: the trunk depends only on the (shared) context, each
//! candidate's `q` row is assembled independently, and every kernel in
//! `od_tensor::infer` accumulates each output element in an order that
//! does not depend on how many other rows are in the batch. The engine is
//! one more link in the live → batched → frozen oracle chain, asserted by
//! `tests/engine_equivalence.rs` and the `ci.sh` throughput smoke — and
//! `tests/chaos.rs` asserts it *under injected faults*: responses that
//! survive a panic-riddled run are still bit-identical to the oracle.

use crate::error::{PublishError, ServeError};
use crate::handle::{ArtifactVersion, ModelHandle, VersionSlot};
use crate::metrics::{EngineMetrics, HistSummary};
use crate::oneshot;
use crate::queue::Queue;
use crate::sync;
use od_obs::trace::{self, TraceContext, NO_ATTRS};
use od_tensor::infer::Workspace;
use odnet_core::{FrozenOdNet, GroupInput, InvalidInput};
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Where a [`FailPoint`] hook fires relative to one worker batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailSite {
    /// After draining and expiring a batch, before any request is scored —
    /// a panic here faults the whole batch.
    BeforeBatch,
    /// After every request in the batch was answered — a panic here kills
    /// the worker without faulting any request.
    AfterBatch,
}

/// Fault-injection hook, called by every worker around every batch with
/// the site and the engine-global batch sequence number. Production
/// configs leave it `None`; the chaos tests and `odnet serve-bench
/// --inject-panics` use it to panic, stall, or poison on chosen batches.
pub type FailPoint = Arc<dyn Fn(FailSite, u64) + Send + Sync>;

/// Tuning knobs of the [`Engine`].
#[derive(Clone)]
pub struct EngineConfig {
    /// Worker threads scoring requests. `0` is allowed for tests that need
    /// a queue nobody drains (e.g. deterministic backpressure).
    pub workers: usize,
    /// Bounded queue capacity; a full queue rejects instead of growing.
    pub queue_capacity: usize,
    /// Maximum requests a worker drains per wakeup (and therefore the
    /// largest possible coalesced batch).
    pub max_batch: usize,
    /// Merge same-context requests into one batched forward. Disabling
    /// this scores each request individually — the "before" side of the
    /// throughput benchmark.
    pub coalesce: bool,
    /// Optional fault-injection hook; `None` (the default) compiles the
    /// call sites down to a branch on a never-taken `Option`.
    pub fail_point: Option<FailPoint>,
    /// Record the per-request stage clock (validate, queue wait, coalesce,
    /// forward, scatter, end-to-end histograms). On by default — the
    /// throughput gate in `ci.sh` holds its cost under 3%. When off, each
    /// stage site is a single never-taken branch and no clock is read;
    /// the accounting counters stay on either way.
    pub stage_timing: bool,
    /// How long a generation retired by [`Engine::publish`] is kept alive
    /// before its memory is reclaimed. In-flight batches hold their own
    /// reference and are safe regardless; the grace period keeps the
    /// (possibly multi-GB) deallocation off the publisher's critical path
    /// and out of the swap window entirely.
    pub swap_grace: Duration,
}

impl fmt::Debug for EngineConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineConfig")
            .field("workers", &self.workers)
            .field("queue_capacity", &self.queue_capacity)
            .field("max_batch", &self.max_batch)
            .field("coalesce", &self.coalesce)
            .field("fail_point", &self.fail_point.as_ref().map(|_| "<hook>"))
            .field("stage_timing", &self.stage_timing)
            .field("swap_grace", &self.swap_grace)
            .finish()
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            queue_capacity: 1024,
            max_batch: 64,
            coalesce: true,
            fail_point: None,
            stage_timing: true,
            swap_grace: Duration::from_millis(200),
        }
    }
}

/// Outcome of [`Engine::submit`].
pub enum Submit {
    /// The request was queued; wait on the ticket for its scores.
    Accepted(Ticket),
    /// The queue was full (or shutting down) — the group is handed back so
    /// the caller can retry, shed load, or fail the request upstream.
    Rejected(GroupInput),
    /// The request failed admission validation and was never queued: its
    /// ids or sequences are inconsistent with the frozen artifact.
    Invalid {
        /// The unqueued group, handed back.
        group: GroupInput,
        /// What exactly was wrong with it.
        error: InvalidInput,
    },
}

/// A resolved request: the scores plus the identity of the model
/// generation that produced them. Under hot-swapping ([`Engine::publish`])
/// concurrent responses can legitimately come from different generations;
/// the version is what lets a caller (or an A/B harness) attribute each
/// response to the exact artifact that served it.
#[derive(Clone, Debug)]
pub struct ScoredResponse {
    /// Per-candidate `(p^O, p^D)` probabilities, in candidate order.
    pub scores: Vec<(f32, f32)>,
    /// The artifact generation that scored this request.
    pub version: ArtifactVersion,
}

/// What a worker sends back through the oneshot.
type Response = Result<ScoredResponse, ServeError>;

/// Pending response handle; one per accepted request.
pub struct Ticket {
    rx: oneshot::Receiver<Response>,
}

impl Ticket {
    /// Block until the request resolves: the per-candidate `(p^O, p^D)`
    /// scores, or a typed [`ServeError`]. Never panics and never hangs on
    /// a live engine — even a request dropped unscored at teardown
    /// resolves (as [`ServeError::Rejected`]).
    pub fn wait(self) -> Result<Vec<(f32, f32)>, ServeError> {
        self.wait_versioned().map(|r| r.scores)
    }

    /// Like [`wait`](Self::wait), but also report which artifact
    /// generation scored the request — the handle the swap chaos tests
    /// (and any CTR-attribution consumer) check bit-identity against.
    pub fn wait_versioned(self) -> Response {
        self.rx.recv().unwrap_or(Err(ServeError::Rejected))
    }

    /// Like [`wait`](Self::wait), but give up after `timeout` with
    /// [`ServeError::DeadlineExceeded`]. Bounded even if the engine is
    /// wedged or already torn down; a response arriving after the timeout
    /// is discarded harmlessly.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Vec<(f32, f32)>, ServeError> {
        self.wait_versioned_timeout(timeout).map(|r| r.scores)
    }

    /// [`wait_versioned`](Self::wait_versioned) with a bound: the version
    /// stamp *and* a guarantee the caller is never parked longer than
    /// `timeout` — the combination the HTTP tier needs (attribution
    /// headers + a connection thread that must never hang).
    pub fn wait_versioned_timeout(self, timeout: Duration) -> Response {
        match self.rx.recv_timeout(timeout) {
            Ok(Some(resp)) => resp,
            Ok(None) => Err(ServeError::Rejected),
            Err(oneshot::TimedOut) => Err(ServeError::DeadlineExceeded),
        }
    }
}

struct Request {
    group: GroupInput,
    /// Worker-side cutoff: expired requests are dropped at drain time.
    deadline: Option<Instant>,
    /// Taken (exactly once) when the request is answered.
    tx: Option<oneshot::Sender<Response>>,
    /// Stage clock origin (an [`od_obs::clock`] stamp), taken at submit
    /// when [`EngineConfig::stage_timing`] is on — or when the request is
    /// traced: queue wait and end-to-end latency are measured from here.
    submitted: Option<od_obs::clock::Stamp>,
    /// Trace the request records spans into (inactive when untraced —
    /// every trace site then costs one branch).
    ctx: TraceContext,
}

/// Snapshot of the engine's counters.
#[derive(Clone, Debug, serde::Serialize)]
pub struct EngineStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests turned away by backpressure.
    pub rejected: u64,
    /// Requests refused at admission validation.
    pub invalid: u64,
    /// Requests dropped at drain time because their deadline had passed.
    pub expired: u64,
    /// Requests resolved with [`ServeError::WorkerPanicked`].
    pub panicked_requests: u64,
    /// Requests scored and answered successfully.
    pub completed: u64,
    /// Frozen forwards executed (a coalesced forward counts once).
    pub forwards: u64,
    /// Requests that shared their forward with at least one other request.
    pub coalesced_requests: u64,
    /// Distribution of requests merged per forward. Batch sizes below 32
    /// land in exact (`lo == hi`) buckets of the od-obs log-linear
    /// histogram, so for the usual `max_batch` the histogram loses
    /// nothing over the old fixed-width array it replaced.
    pub batch_hist: HistSummary,
}

impl EngineStats {
    /// Mean requests merged per forward — 1.0 means coalescing never
    /// engaged, larger is better.
    pub fn mean_requests_per_forward(&self) -> f64 {
        if self.forwards == 0 {
            return 0.0;
        }
        self.completed as f64 / self.forwards as f64
    }
}

/// Supervision + fault snapshot of the engine.
///
/// The accounting invariant the chaos tests assert: every accepted
/// request resolves exactly once, so `submitted == completed + expired +
/// panicked_requests + drain_rejected + in_flight` (with
/// `in_flight == 0` once all tickets have resolved), and
/// `worker_panics == respawns` once the supervisor has caught up.
#[derive(Clone, Debug, serde::Serialize)]
pub struct EngineHealth {
    /// Worker threads the engine was configured with.
    pub configured_workers: usize,
    /// Worker threads currently alive (dips below `configured_workers`
    /// between a panic and its respawn).
    pub live_workers: usize,
    /// Worker deaths caused by a panic mid-batch.
    pub worker_panics: u64,
    /// Replacement workers spawned by the supervisor.
    pub respawns: u64,
    /// Requests turned away by backpressure.
    pub rejected: u64,
    /// Requests refused at admission validation.
    pub invalid: u64,
    /// Requests dropped because their deadline passed while queued.
    pub expired: u64,
    /// Requests resolved with [`ServeError::WorkerPanicked`].
    pub panicked_requests: u64,
    /// Queued requests force-resolved [`ServeError::Rejected`] because a
    /// [`drain`](Engine::drain) grace window expired before a worker
    /// claimed them.
    pub drain_rejected: u64,
    /// Publish epoch of the live artifact (0 = the construction-time
    /// model, incremented by each successful [`Engine::publish`]).
    pub artifact_epoch: u64,
    /// FNV checksum of the live artifact (`.odz` meta checksum for
    /// on-disk artifacts, [`FrozenOdNet::fingerprint`] otherwise).
    pub artifact_checksum: u32,
    /// Successful [`Engine::publish`] calls over the engine's lifetime.
    pub publishes: u64,
    /// Publishes refused with a typed [`PublishError`].
    pub publish_rejected: u64,
    /// Retired generations still inside their grace period (memory not
    /// yet reclaimed).
    pub retired_artifacts: usize,
}

/// Rendezvous between dying workers and the supervisor thread.
struct Supervisor {
    state: Mutex<SupState>,
    wake: Condvar,
}

struct SupState {
    /// Worker slots whose threads exited via a caught panic, awaiting a
    /// join + respawn.
    dead: Vec<usize>,
    /// One slot per configured worker; `None` while being respawned.
    handles: Vec<Option<JoinHandle<()>>>,
    shutdown: bool,
}

struct Shared {
    queue: Queue<Request>,
    /// The swappable model slot: workers load it once per batch drain,
    /// admission validation loads it per submit, [`Engine::publish`]
    /// swaps it. See `handle.rs` for the epoch/grace protocol.
    handle: ModelHandle,
    /// Registry-backed instruments: accounting counters, gauges, and the
    /// stage-clock histograms (see `metrics.rs` for the inventory).
    metrics: EngineMetrics,
    supervisor: Supervisor,
    fail: Option<FailPoint>,
    /// Engine-global batch sequence number, fed to the fail point — the
    /// deterministic coordinate faults are injected at.
    batch_seq: AtomicU64,
    max_batch: usize,
    coalesce: bool,
    stage_timing: bool,
    configured_workers: usize,
}

/// A concurrent scoring engine over a frozen artifact. Submitting is
/// `&self`, so one engine handle is shared freely across caller threads;
/// dropping the handle drains the queue and joins supervisor and workers.
pub struct Engine {
    shared: Arc<Shared>,
    supervisor: Option<JoinHandle<()>>,
}

impl Engine {
    /// Spawn `config.workers` scoring threads (plus one supervisor) over
    /// `model`, published as epoch 0 with its in-memory
    /// [`fingerprint`](FrozenOdNet::fingerprint) as checksum. Use
    /// [`Engine::new_versioned`] when the artifact came off disk and its
    /// `.odz` header checksum is at hand.
    pub fn new(model: Arc<FrozenOdNet>, config: EngineConfig) -> Engine {
        let checksum = model.fingerprint();
        Engine::new_versioned(model, checksum, config)
    }

    /// [`Engine::new`] with an explicit artifact checksum (e.g. the `.odz`
    /// header's meta checksum from
    /// [`load_frozen`](crate::artifact::load_frozen)).
    pub fn new_versioned(model: Arc<FrozenOdNet>, checksum: u32, config: EngineConfig) -> Engine {
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        if config.stage_timing {
            // One-time tick→ns calibration, paid here instead of inside
            // the first request's stage sample.
            od_obs::clock::calibrate();
        }
        let metrics = EngineMetrics::register(config.workers);
        metrics.live_workers.set(config.workers as i64);
        metrics.artifact_epoch.set(0);
        metrics.artifact_checksum.set(checksum as i64);
        let shared = Arc::new(Shared {
            queue: Queue::new(config.queue_capacity),
            handle: ModelHandle::new(VersionSlot::register(model, 0, checksum), config.swap_grace),
            metrics,
            supervisor: Supervisor {
                state: Mutex::new(SupState {
                    dead: Vec::new(),
                    handles: Vec::new(),
                    shutdown: false,
                }),
                wake: Condvar::new(),
            },
            fail: config.fail_point,
            batch_seq: AtomicU64::new(0),
            max_batch: config.max_batch,
            coalesce: config.coalesce,
            stage_timing: config.stage_timing,
            configured_workers: config.workers,
        });
        {
            let mut st = sync::lock(&shared.supervisor.state);
            st.handles = (0..config.workers)
                .map(|i| Some(spawn_worker(Arc::clone(&shared), i)))
                .collect();
        }
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("od-serve-sup".to_string())
                .spawn(move || supervisor_loop(&shared))
                .expect("spawn serving supervisor")
        };
        Engine {
            shared,
            supervisor: Some(supervisor),
        }
    }

    /// Atomically swap in a new model generation, with the artifact's
    /// in-memory [`fingerprint`](FrozenOdNet::fingerprint) as checksum.
    /// Use [`Engine::publish_versioned`] when the `.odz` header checksum
    /// is at hand.
    ///
    /// In-flight batches finish on the generation they loaded; the next
    /// drain (and the next admission validation) observes the new epoch;
    /// the retired generation's memory is reclaimed only after
    /// [`EngineConfig::swap_grace`]. No ticket is ever dropped by a swap.
    ///
    /// Fails with a typed [`PublishError`] (leaving the live generation
    /// untouched) if the offered artifact is not drop-in compatible:
    /// requests validated against the old generation may be scored by the
    /// new one, so the id universe and sequence-length contract must
    /// match. Publishing to a shut-down engine succeeds trivially — the
    /// generation is installed but nothing will score on it.
    pub fn publish(&self, model: Arc<FrozenOdNet>) -> Result<ArtifactVersion, PublishError> {
        let checksum = model.fingerprint();
        self.publish_versioned(model, checksum)
    }

    /// [`Engine::publish`] with an explicit artifact checksum.
    pub fn publish_versioned(
        &self,
        model: Arc<FrozenOdNet>,
        checksum: u32,
    ) -> Result<ArtifactVersion, PublishError> {
        let metrics = &self.shared.metrics;
        match self.shared.handle.publish(model, checksum) {
            Ok(version) => {
                metrics.publishes.inc();
                metrics.artifact_epoch.set(version.epoch as i64);
                metrics.artifact_checksum.set(version.checksum as i64);
                Ok(version)
            }
            Err(e) => {
                metrics.publish_rejected.inc();
                Err(e)
            }
        }
    }

    /// Identity (publish epoch + checksum) of the live model generation.
    pub fn version(&self) -> ArtifactVersion {
        self.shared.handle.version()
    }

    /// Enqueue one scoring request. Never blocks: invalid inputs come
    /// straight back as [`Submit::Invalid`], and a full queue hands the
    /// group back as [`Submit::Rejected`].
    pub fn submit(&self, group: GroupInput) -> Submit {
        self.submit_with_deadline(group, None)
    }

    /// [`submit`](Self::submit) with a worker-side deadline: if the
    /// request is still queued when a worker drains it after `deadline`,
    /// it is dropped and resolves with [`ServeError::DeadlineExceeded`]
    /// instead of being scored late.
    pub fn submit_with_deadline(&self, group: GroupInput, deadline: Option<Instant>) -> Submit {
        self.submit_traced(group, deadline, TraceContext::NONE)
    }

    /// [`submit_with_deadline`](Self::submit_with_deadline) carrying a
    /// trace context: the request's admission, queue wait, coalesce, and
    /// forward stages record spans into `ctx`'s trace, and the forward
    /// span is stamped with the batch sequence and artifact epoch that
    /// scored it. Pass [`TraceContext::NONE`] when untraced.
    pub fn submit_traced(
        &self,
        group: GroupInput,
        deadline: Option<Instant>,
        ctx: TraceContext,
    ) -> Submit {
        let metrics = &self.shared.metrics;
        // The stage clock starts before validation so `od_request_e2e_ns`
        // covers the full lifecycle of an accepted request. A traced
        // request stamps regardless of stage timing — its spans need the
        // same origins.
        let submitted = (self.shared.stage_timing || ctx.is_active()).then(od_obs::clock::now);
        if let Err(error) = self.shared.handle.load().model.validate_group(&group) {
            metrics.invalid.inc();
            return Submit::Invalid { group, error };
        }
        if let Some(t0) = submitted {
            let done = od_obs::clock::now();
            if self.shared.stage_timing {
                metrics
                    .validate_ns
                    .record(od_obs::clock::ns_between(t0, done));
            }
            if ctx.is_active() {
                trace::global().record(ctx, "admission", t0, done);
            }
        }
        let (tx, rx) = oneshot::channel();
        match self.shared.queue.try_push(Request {
            group,
            deadline,
            tx: Some(tx),
            submitted,
            ctx,
        }) {
            Ok(()) => {
                metrics.submitted.inc();
                metrics.queue_depth.add(1);
                Submit::Accepted(Ticket { rx })
            }
            Err(req) => {
                metrics.rejected.inc();
                Submit::Rejected(req.group)
            }
        }
    }

    /// Convenience: submit and block for the outcome.
    pub fn score(&self, group: GroupInput) -> Result<Vec<(f32, f32)>, ServeError> {
        match self.submit(group) {
            Submit::Accepted(ticket) => ticket.wait(),
            Submit::Rejected(_) => Err(ServeError::Rejected),
            Submit::Invalid { error, .. } => Err(ServeError::InvalidInput(error)),
        }
    }

    /// Completed-request count alone — a handful of relaxed shard loads,
    /// cheap enough to poll from a pacing loop. (`stats()` also snapshots
    /// the batch-size histogram, which allocates; polling it at kHz rates
    /// measurably competes with workers on small machines.)
    pub fn completed(&self) -> u64 {
        self.shared.metrics.completed.get()
    }

    /// Snapshot the engine's counters.
    pub fn stats(&self) -> EngineStats {
        let m = &self.shared.metrics;
        EngineStats {
            submitted: m.submitted.get(),
            rejected: m.rejected.get(),
            invalid: m.invalid.get(),
            expired: m.expired.get(),
            panicked_requests: m.panicked_requests.get(),
            completed: m.completed.get(),
            forwards: m.forwards.get(),
            coalesced_requests: m.coalesced_requests.get(),
            batch_hist: HistSummary::from(&m.batch_size.snapshot()),
        }
    }

    /// Raw coalesced-batch-size histogram (this engine's only — the
    /// registry merge never mixes other engines into this handle).
    pub(crate) fn batch_hist_raw(&self) -> od_obs::HistogramSnapshot {
        self.shared.metrics.batch_size.snapshot()
    }

    /// Snapshot the supervision state and fault counters.
    pub fn health(&self) -> EngineHealth {
        let m = &self.shared.metrics;
        let version = self.shared.handle.version();
        EngineHealth {
            configured_workers: self.shared.configured_workers,
            live_workers: m.live_workers.get().max(0) as usize,
            worker_panics: m.worker_panics.get(),
            respawns: m.respawns.get(),
            rejected: m.rejected.get(),
            invalid: m.invalid.get(),
            expired: m.expired.get(),
            panicked_requests: m.panicked_requests.get(),
            drain_rejected: m.drain_rejected.get(),
            artifact_epoch: version.epoch,
            artifact_checksum: version.checksum,
            publishes: m.publishes.get(),
            publish_rejected: m.publish_rejected.get(),
            retired_artifacts: self.shared.handle.retired_len(),
        }
    }

    /// Stop admitting requests: future submits are rejected, workers
    /// drain what is already queued and then park. Safe to race with
    /// in-flight submits from other threads — each one either gets its
    /// ticket resolved or an immediate [`Submit::Rejected`]. Dropping the
    /// engine still performs the full join.
    pub fn shutdown(&self) {
        self.shared.queue.close();
    }

    /// [`shutdown`](Self::shutdown) with a bound on how long any caller
    /// can stay blocked on a ticket: close the queue, give workers
    /// `grace` to finish what is queued, then force-resolve whatever they
    /// never claimed as [`ServeError::Rejected`] (counted in
    /// `od_engine_drain_rejected_total`). This is the network tier's
    /// drain hook — a connection thread holding a ticket is guaranteed an
    /// answer even when the pool is stalled or was configured with zero
    /// workers, so graceful drain can always answer every in-flight
    /// request before closing the listener.
    ///
    /// Returns `true` when every accepted request had resolved by the
    /// time the grace window closed (the accounting invariant reconciled
    /// with `in_flight == 0`), `false` when a worker was still busy on a
    /// claimed batch at the deadline — those tickets still resolve when
    /// the batch finishes (or at engine drop), just not within `grace`.
    pub fn drain(&self, grace: Duration) -> bool {
        self.shared.queue.close();
        let deadline = Instant::now() + grace;
        let m = &self.shared.metrics;
        let settled = |m: &EngineMetrics| {
            // in_flight == 0 ⇔ every accepted request has been resolved.
            m.submitted.get()
                == m.completed.get()
                    + m.expired.get()
                    + m.panicked_requests.get()
                    + m.drain_rejected.get()
        };
        // Phase 1: let workers drain the backlog within the grace window.
        while !settled(m) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        if settled(m) {
            return true;
        }
        // Phase 2: grace expired — force-resolve everything still queued.
        // Workers hold claimed batches outside the queue, so this only
        // touches requests no worker will reach in time; each resolves
        // exactly once because `drain_now` removes it from the queue
        // before we answer it.
        let mut leftovers: Vec<Request> = Vec::new();
        self.shared.queue.drain_now(&mut leftovers);
        m.queue_depth.sub(leftovers.len() as i64);
        for mut req in leftovers {
            m.drain_rejected.inc();
            req.take_tx().send(Err(ServeError::Rejected));
        }
        // Phase 3: claimed batches may still be in flight on a stalled
        // worker; give them the remainder of the window.
        while !settled(m) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        settled(m)
    }

    /// Worker threads this engine was configured with (the supervisor
    /// keeps the pool at this size).
    pub fn workers(&self) -> usize {
        self.shared.configured_workers
    }

    /// Whether cross-request micro-batching is enabled.
    pub fn coalescing(&self) -> bool {
        self.shared.coalesce
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shared.queue.close();
        {
            let mut st = sync::lock(&self.shared.supervisor.state);
            st.shutdown = true;
        }
        self.shared.supervisor.wake.notify_all();
        if let Some(h) = self.supervisor.take() {
            // The supervisor joins every worker before exiting; none of
            // them can panic out of their thread (batches run under
            // catch_unwind), so this join only fails if the supervisor
            // itself died — nothing to do about it in drop.
            let _ = h.join();
        }
        // Counters stay (monotone, Prometheus-style), but this engine's
        // instantaneous series must stop contributing to process-wide
        // snapshots now that nothing is queued or running.
        self.shared.metrics.zero_gauges();
    }
}

fn spawn_worker(shared: Arc<Shared>, idx: usize) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("od-serve-{idx}"))
        .spawn(move || worker_main(&shared, idx))
        .expect("spawn serving worker")
}

/// Worker thread body: run batches until the queue closes or a batch
/// panics; in the latter case report the death so the supervisor respawns
/// this slot.
fn worker_main(shared: &Arc<Shared>, idx: usize) {
    let clean = worker_run(shared, idx);
    shared.metrics.live_workers.sub(1);
    if !clean {
        shared.metrics.worker_panics.inc();
        let mut st = sync::lock(&shared.supervisor.state);
        st.dead.push(idx);
        drop(st);
        shared.supervisor.wake.notify_one();
    }
}

/// The batch loop. Returns `true` on clean shutdown (queue closed and
/// drained), `false` if a batch panicked — after resolving every
/// unanswered ticket in that batch with [`ServeError::WorkerPanicked`].
fn worker_run(shared: &Shared, idx: usize) -> bool {
    let mut ws = Workspace::new();
    let mut batch: Vec<Request> = Vec::new();
    let mut out: Vec<(f32, f32)> = Vec::new();
    let mut merged = empty_group();
    let mut plan = CoalescePlan::default();
    while shared.queue.pop_up_to(shared.max_batch, &mut batch) {
        // Load the model generation once per drain: every request in this
        // batch is scored by (and attributed to) this slot, even if a
        // publish lands mid-batch — the strong reference held here keeps
        // the artifact alive until the batch resolves. Reap retired
        // generations whose grace period has elapsed (one relaxed load
        // when nothing is retired).
        let slot = shared.handle.load();
        shared.handle.reap();
        shared.metrics.queue_depth.sub(batch.len() as i64);
        // Queue wait is stamped at drain, before expiry: expired requests
        // waited too, and their wait is precisely what expired them.
        let any_traced = batch.iter().any(|r| r.ctx.is_active());
        if shared.stage_timing || any_traced {
            let drained = od_obs::clock::now();
            for req in &batch {
                if let Some(t0) = req.submitted {
                    if shared.stage_timing {
                        shared
                            .metrics
                            .queue_wait_ns
                            .record(od_obs::clock::ns_between(t0, drained));
                    }
                    if req.ctx.is_active() {
                        trace::global().record(req.ctx, "queue_wait", t0, drained);
                    }
                }
            }
        }
        drop_expired(shared, &mut batch);
        let seq = shared.batch_seq.fetch_add(1, Ordering::Relaxed);
        // Everything from the fail-point hook through scoring runs under
        // catch_unwind: a panic must only take down this batch, not the
        // process. The scratch buffers are left in whatever state the
        // panic found them, which is fine — a panicked worker never
        // reuses them (it exits; its replacement starts fresh).
        let scored = catch_unwind(AssertUnwindSafe(|| {
            if let Some(fp) = &shared.fail {
                fp(FailSite::BeforeBatch, seq);
            }
            let plan_start = (shared.stage_timing || any_traced).then(od_obs::clock::now);
            if shared.coalesce {
                plan.build(&batch);
            } else {
                plan.singletons(batch.len());
            }
            if let Some(t0) = plan_start {
                let done = od_obs::clock::now();
                if shared.stage_timing {
                    shared
                        .metrics
                        .coalesce_ns
                        .record(od_obs::clock::ns_between(t0, done));
                }
                // The plan covers the whole drain; each traced member
                // carries the span so its trace shows the wait.
                for req in batch.iter().filter(|r| r.ctx.is_active()) {
                    trace::global().record(req.ctx, "coalesce", t0, done);
                }
            }
            for set in plan.sets() {
                score_set(
                    shared,
                    &slot,
                    idx,
                    seq,
                    &mut ws,
                    &mut out,
                    &mut merged,
                    &mut batch,
                    set,
                );
            }
            if let Some(fp) = &shared.fail {
                fp(FailSite::AfterBatch, seq);
            }
        }));
        if scored.is_err() {
            for req in batch.iter_mut() {
                if let Some(tx) = req.tx.take() {
                    shared.metrics.panicked_requests.inc();
                    if req.ctx.is_active() {
                        // Make the fault visible in the trace before the
                        // caller is told: the error span marks where the
                        // panic isolation resolved this request.
                        let now = od_obs::clock::now();
                        trace::global().record_full(
                            req.ctx,
                            "worker_panic",
                            now,
                            now,
                            0,
                            true,
                            [("batch", seq), ("", 0)],
                        );
                    }
                    tx.send(Err(ServeError::WorkerPanicked));
                }
            }
            shared.metrics.update_hit_rate();
            return false;
        }
        shared.metrics.update_hit_rate();
        // Senders were consumed by scatter; clear for the next drain.
        batch.clear();
    }
    true
}

/// Resolve (and remove) every request whose deadline already passed.
/// Runs outside `catch_unwind`: it cannot panic, and doing it first means
/// an injected batch fault never turns a `DeadlineExceeded` into a
/// `WorkerPanicked`.
fn drop_expired(shared: &Shared, batch: &mut Vec<Request>) {
    if batch.iter().all(|r| r.deadline.is_none()) {
        return; // the common (deadline-free) path takes one scan, no clock read
    }
    let now = Instant::now();
    batch.retain_mut(|req| match req.deadline {
        Some(d) if d <= now => {
            shared.metrics.expired.inc();
            if req.ctx.is_active() {
                let stamp = od_obs::clock::now();
                trace::global().record_full(
                    req.ctx,
                    "expired",
                    req.submitted.unwrap_or(stamp),
                    stamp,
                    0,
                    true,
                    NO_ATTRS,
                );
            }
            req.take_tx().send(Err(ServeError::DeadlineExceeded));
            false
        }
        _ => true,
    });
}

/// Supervisor thread body: join and respawn panicked workers until
/// shutdown, then join the whole pool.
fn supervisor_loop(shared: &Arc<Shared>) {
    let mut st = sync::lock(&shared.supervisor.state);
    loop {
        if let Some(idx) = st.dead.pop() {
            let corpse = st.handles[idx].take();
            drop(st);
            if let Some(h) = corpse {
                let _ = h.join();
            }
            let replacement = spawn_worker(Arc::clone(shared), idx);
            shared.metrics.live_workers.add(1);
            shared.metrics.respawns.inc();
            st = sync::lock(&shared.supervisor.state);
            st.handles[idx] = Some(replacement);
            continue;
        }
        if st.shutdown {
            break;
        }
        st = sync::wait(&shared.supervisor.wake, st);
    }
    // Shutdown: the queue is closed, every worker drains and exits; join
    // them all (including any that died after shutdown was flagged —
    // their handles are still in the slots).
    let pool: Vec<JoinHandle<()>> = st.handles.iter_mut().filter_map(|h| h.take()).collect();
    drop(st);
    for h in pool {
        let _ = h.join();
    }
}

/// Score one coalesced set of requests (indices into `batch`) against one
/// model generation and scatter the per-request score slices back through
/// their oneshots. `widx` is the worker slot, keying the per-worker
/// forward-time histogram; `seq` is the engine-global batch sequence the
/// forward spans are stamped with.
#[allow(clippy::too_many_arguments)]
fn score_set(
    shared: &Shared,
    slot: &VersionSlot,
    widx: usize,
    seq: u64,
    ws: &mut Workspace,
    out: &mut Vec<(f32, f32)>,
    merged: &mut GroupInput,
    batch: &mut [Request],
    set: &[usize],
) {
    let metrics = &shared.metrics;
    metrics.forwards.inc();
    metrics.batch_size.record(set.len() as u64);
    // Batch sequence + artifact epoch: the two coordinates a trace needs
    // to answer "which batch did this ride, and which generation scored
    // it".
    let fwd_attrs = [("batch", seq), ("epoch", slot.version.epoch)];
    if set.len() == 1 {
        let req = &mut batch[set[0]];
        let traced = req.ctx.is_active();
        let fwd_start = (shared.stage_timing || traced).then(od_obs::clock::now);
        slot.model.score_group_into(ws, &req.group, out);
        let fwd_end = fwd_start.map(|t0| {
            let now = od_obs::clock::now();
            if shared.stage_timing {
                metrics.forward_ns[widx].record(od_obs::clock::ns_between(t0, now));
            }
            now
        });
        if traced {
            trace::global().record_full(
                req.ctx,
                "forward",
                fwd_start.unwrap_or_default(),
                fwd_end.unwrap_or_default(),
                0,
                false,
                fwd_attrs,
            );
        }
        // Count before sending: the oneshot's lock handoff then publishes
        // the increment to whoever observes the response.
        metrics.completed.inc();
        slot.requests.inc();
        slot.scores.add(out.len() as u64);
        let submitted = req.submitted;
        let trace_id = req.ctx.trace_id;
        req.take_tx().send(Ok(ScoredResponse {
            scores: out.clone(),
            version: slot.version,
        }));
        if let Some(t1) = fwd_end {
            let done = od_obs::clock::now();
            if shared.stage_timing {
                metrics
                    .scatter_ns
                    .record(od_obs::clock::ns_between(t1, done));
                if let Some(t0) = submitted {
                    // The exemplar links this bucket of the e2e histogram
                    // to the trace that landed there (no-op id 0 when
                    // untraced).
                    metrics
                        .e2e_ns
                        .record_exemplar(od_obs::clock::ns_between(t0, done), trace_id);
                }
            }
        }
        return;
    }
    metrics.coalesced_requests.add(set.len() as u64);
    // One forward over the concatenated candidate lists. The context is
    // shared by construction (that is what the plan grouped on).
    copy_context(merged, &batch[set[0]].group);
    merged.candidates.clear();
    for &i in set {
        merged
            .candidates
            .extend_from_slice(&batch[i].group.candidates);
    }
    let any_traced = set.iter().any(|&i| batch[i].ctx.is_active());
    let fwd_start = (shared.stage_timing || any_traced).then(od_obs::clock::now);
    slot.model.score_group_into(ws, merged, out);
    let fwd_end = fwd_start.map(|t0| {
        let now = od_obs::clock::now();
        if shared.stage_timing {
            metrics.forward_ns[widx].record(od_obs::clock::ns_between(t0, now));
        }
        now
    });
    if any_traced {
        // The set's first member is the coalesce leader; followers link
        // their forward span to the leader's, so a trace shows not just
        // "I rode batch N" but *whose* forward it shared.
        let (t0, t1) = (fwd_start.unwrap_or_default(), fwd_end.unwrap_or_default());
        let leader_span =
            trace::global().record_full(batch[set[0]].ctx, "forward", t0, t1, 0, false, fwd_attrs);
        for &i in &set[1..] {
            if batch[i].ctx.is_active() {
                trace::global().record_full(
                    batch[i].ctx,
                    "forward",
                    t0,
                    t1,
                    leader_span,
                    false,
                    fwd_attrs,
                );
            }
        }
    }
    slot.scores.add(out.len() as u64);
    let mut offset = 0;
    for &i in set {
        let req = &mut batch[i];
        let n = req.group.candidates.len();
        metrics.completed.inc();
        slot.requests.inc();
        req.take_tx().send(Ok(ScoredResponse {
            scores: out[offset..offset + n].to_vec(),
            version: slot.version,
        }));
        offset += n;
    }
    // One clock read covers the whole scatter; every member of the set
    // shares it as its end-to-end endpoint.
    if let Some(t1) = fwd_end {
        let done = od_obs::clock::now();
        if shared.stage_timing {
            metrics
                .scatter_ns
                .record(od_obs::clock::ns_between(t1, done));
            for &i in set {
                if let Some(t0) = batch[i].submitted {
                    metrics.e2e_ns.record_exemplar(
                        od_obs::clock::ns_between(t0, done),
                        batch[i].ctx.trace_id,
                    );
                }
            }
        }
    }
}

impl Request {
    /// Move the sender out (each request is answered exactly once).
    fn take_tx(&mut self) -> oneshot::Sender<Response> {
        self.tx.take().expect("request answered twice")
    }
}

/// Reusable grouping of a drained batch into same-context sets. Arrival
/// order is preserved both across sets (by first member) and within one.
#[derive(Default)]
struct CoalescePlan {
    /// Flattened member indices.
    members: Vec<usize>,
    /// `(start, len)` ranges into `members`, one per set.
    ranges: Vec<(usize, usize)>,
    /// Scratch: context hash → set indices with that hash.
    index: HashMap<u64, Vec<usize>>,
}

impl CoalescePlan {
    fn clear(&mut self) {
        self.members.clear();
        self.ranges.clear();
        // Drop the keys too: a batch holds at most `max_batch` distinct
        // contexts, so rebuilding the small map per drain is cheap, while
        // keeping every context hash ever seen would grow without bound.
        self.index.clear();
    }

    /// One set per request — the coalescing-disabled path.
    fn singletons(&mut self, n: usize) {
        self.clear();
        for i in 0..n {
            self.members.push(i);
            self.ranges.push((i, 1));
        }
    }

    /// Group `batch` by scoring context. Two requests land in the same set
    /// only if their contexts compare equal field-by-field (the hash is
    /// just a prefilter, so collisions cannot merge distinct contexts).
    fn build(&mut self, batch: &[Request]) {
        self.clear();
        // First pass: assign each request a set id.
        let mut set_of = Vec::with_capacity(batch.len());
        let mut set_sizes: Vec<usize> = Vec::new();
        let mut first_of_set: Vec<usize> = Vec::new();
        for (i, req) in batch.iter().enumerate() {
            let h = context_hash(&req.group);
            let bucket = self.index.entry(h).or_default();
            let found = bucket
                .iter()
                .copied()
                .find(|&s| same_context(&batch[first_of_set[s]].group, &req.group));
            let s = match found {
                Some(s) => s,
                None => {
                    let s = set_sizes.len();
                    set_sizes.push(0);
                    first_of_set.push(i);
                    bucket.push(s);
                    s
                }
            };
            set_sizes[s] += 1;
            set_of.push(s);
        }
        // Second pass: lay the members out contiguously per set.
        let mut starts = Vec::with_capacity(set_sizes.len());
        let mut acc = 0;
        for &size in &set_sizes {
            starts.push(acc);
            self.ranges.push((acc, size));
            acc += size;
        }
        self.members.resize(acc, 0);
        let mut cursor = starts;
        for (i, &s) in set_of.iter().enumerate() {
            self.members[cursor[s]] = i;
            cursor[s] += 1;
        }
    }

    fn sets(&self) -> impl Iterator<Item = &[usize]> {
        self.ranges
            .iter()
            .map(move |&(start, len)| &self.members[start..start + len])
    }
}

// The context of a request is every [`GroupInput`] field except the
// candidates. `day` and the event-day sequences do not enter the frozen
// forward, but they are part of the template a caller submitted, so they
// participate in equality — only literally identical templates merge.

fn context_hash(g: &GroupInput) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    g.user.hash(&mut h);
    g.day.hash(&mut h);
    g.current_city.hash(&mut h);
    g.lt_origins.hash(&mut h);
    g.lt_dests.hash(&mut h);
    g.lt_days.hash(&mut h);
    g.st_origins.hash(&mut h);
    g.st_dests.hash(&mut h);
    g.st_days.hash(&mut h);
    h.finish()
}

fn same_context(a: &GroupInput, b: &GroupInput) -> bool {
    a.user == b.user
        && a.day == b.day
        && a.current_city == b.current_city
        && a.lt_origins == b.lt_origins
        && a.lt_dests == b.lt_dests
        && a.lt_days == b.lt_days
        && a.st_origins == b.st_origins
        && a.st_dests == b.st_dests
        && a.st_days == b.st_days
}

/// Copy `src`'s context into `dst`, reusing `dst`'s sequence allocations.
fn copy_context(dst: &mut GroupInput, src: &GroupInput) {
    dst.user = src.user;
    dst.day = src.day;
    dst.current_city = src.current_city;
    dst.lt_origins.clone_from(&src.lt_origins);
    dst.lt_dests.clone_from(&src.lt_dests);
    dst.lt_days.clone_from(&src.lt_days);
    dst.st_origins.clone_from(&src.st_origins);
    dst.st_dests.clone_from(&src.st_dests);
    dst.st_days.clone_from(&src.st_days);
}

fn empty_group() -> GroupInput {
    GroupInput {
        user: od_hsg::UserId(0),
        day: 0,
        current_city: od_hsg::CityId(0),
        lt_origins: Vec::new(),
        lt_dests: Vec::new(),
        lt_days: Vec::new(),
        st_origins: Vec::new(),
        st_dests: Vec::new(),
        st_days: Vec::new(),
        candidates: Vec::new(),
    }
}
