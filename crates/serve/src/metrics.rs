//! Engine observability: the od-obs instruments one [`Engine`] owns, and
//! the serializable histogram summary embedded in reports.
//!
//! Every engine registers a **fresh** set of instruments into the
//! process-global [`od_obs`] registry at construction. Handles are cloned
//! into the hot path (recording never goes through the registry), while
//! the registry merges same-named series across engines at snapshot time
//! — so per-engine [`EngineStats`](crate::EngineStats) stay exact even
//! when several engines coexist (as they do under `cargo test`), and
//! `odnet metrics` still sees one process-wide series per name.
//!
//! # Metric inventory
//!
//! | series | kind | meaning |
//! |---|---|---|
//! | `od_engine_submitted_total` | counter | requests accepted into the queue |
//! | `od_engine_rejected_total` | counter | backpressure rejections |
//! | `od_engine_invalid_total` | counter | refused at admission validation |
//! | `od_engine_expired_total` | counter | dropped at drain: deadline passed |
//! | `od_engine_panicked_requests_total` | counter | resolved `WorkerPanicked` |
//! | `od_engine_drain_rejected_total` | counter | force-resolved `Rejected` at drain timeout |
//! | `od_engine_completed_total` | counter | scored and answered |
//! | `od_engine_forwards_total` | counter | frozen forwards executed |
//! | `od_engine_coalesced_requests_total` | counter | requests that shared a forward |
//! | `od_engine_worker_panics_total` | counter | worker deaths by panic |
//! | `od_engine_respawns_total` | counter | supervisor respawns |
//! | `od_engine_publishes_total` | counter | model generations published |
//! | `od_engine_publish_rejected_total` | counter | publishes refused (typed error) |
//! | `od_engine_version_requests_total{epoch=…}` | counter | requests answered, per artifact generation |
//! | `od_engine_version_scores_total{epoch=…}` | counter | candidate scores produced, per generation |
//! | `od_engine_artifact_epoch` | gauge | publish epoch of the live artifact |
//! | `od_engine_artifact_checksum` | gauge | FNV checksum of the live artifact |
//! | `od_engine_queue_depth` | gauge | requests currently queued |
//! | `od_engine_live_workers` | gauge | worker threads currently alive |
//! | `od_engine_coalesce_hit_rate` | float gauge | coalesced / completed |
//! | `od_engine_batch_size` | histogram | requests merged per forward |
//! | `od_request_validate_ns` | histogram | admission validation time |
//! | `od_request_queue_wait_ns` | histogram | submit → drained by a worker |
//! | `od_batch_coalesce_ns` | histogram | per-batch plan construction |
//! | `od_request_forward_ns{worker=…}` | histogram | frozen forward, per worker slot |
//! | `od_request_scatter_ns` | histogram | post-forward scatter per set |
//! | `od_request_e2e_ns` | histogram | submit → response sent |
//!
//! Stage histograms (everything `_ns`-suffixed except `od_engine_batch_size`)
//! are gated by [`EngineConfig::stage_timing`](crate::EngineConfig): when
//! off, each record site is a single never-taken branch and no clock is
//! read. The accounting counters and gauges are always on.

use od_obs::{global, Counter, FloatGauge, Gauge, HistogramSnapshot, LatencyHistogram};

/// The instruments of one engine. Constructed once per [`Engine`]
/// (crate::Engine); all handles are cheap clones of registry-held ones.
pub(crate) struct EngineMetrics {
    pub submitted: Counter,
    pub rejected: Counter,
    pub invalid: Counter,
    pub expired: Counter,
    pub panicked_requests: Counter,
    pub drain_rejected: Counter,
    pub completed: Counter,
    pub forwards: Counter,
    pub coalesced_requests: Counter,
    pub worker_panics: Counter,
    pub respawns: Counter,
    pub publishes: Counter,
    pub publish_rejected: Counter,
    pub artifact_epoch: Gauge,
    pub artifact_checksum: Gauge,
    pub queue_depth: Gauge,
    pub live_workers: Gauge,
    pub coalesce_hit_rate: FloatGauge,
    pub batch_size: LatencyHistogram,
    pub validate_ns: LatencyHistogram,
    pub queue_wait_ns: LatencyHistogram,
    pub coalesce_ns: LatencyHistogram,
    /// One histogram per worker *slot*; a respawned worker keeps feeding
    /// its predecessor's series (same `worker` label).
    pub forward_ns: Vec<LatencyHistogram>,
    pub scatter_ns: LatencyHistogram,
    pub e2e_ns: LatencyHistogram,
}

impl EngineMetrics {
    /// Register a fresh instrument set for an engine with `workers` slots.
    pub fn register(workers: usize) -> EngineMetrics {
        let reg = global();
        EngineMetrics {
            submitted: reg.counter(
                "od_engine_submitted_total",
                "Requests accepted into the queue",
            ),
            rejected: reg.counter(
                "od_engine_rejected_total",
                "Requests turned away by backpressure",
            ),
            invalid: reg.counter(
                "od_engine_invalid_total",
                "Requests refused at admission validation",
            ),
            expired: reg.counter(
                "od_engine_expired_total",
                "Requests dropped at drain time: deadline passed",
            ),
            panicked_requests: reg.counter(
                "od_engine_panicked_requests_total",
                "Requests resolved with WorkerPanicked",
            ),
            drain_rejected: reg.counter(
                "od_engine_drain_rejected_total",
                "Queued requests force-resolved Rejected when drain timed out",
            ),
            completed: reg.counter(
                "od_engine_completed_total",
                "Requests scored and answered successfully",
            ),
            forwards: reg.counter(
                "od_engine_forwards_total",
                "Frozen forwards executed (a coalesced forward counts once)",
            ),
            coalesced_requests: reg.counter(
                "od_engine_coalesced_requests_total",
                "Requests that shared their forward with at least one other",
            ),
            worker_panics: reg.counter(
                "od_engine_worker_panics_total",
                "Worker deaths caused by a panic mid-batch",
            ),
            respawns: reg.counter(
                "od_engine_respawns_total",
                "Replacement workers spawned by the supervisor",
            ),
            publishes: reg.counter(
                "od_engine_publishes_total",
                "Successful model generations published into the engine",
            ),
            publish_rejected: reg.counter(
                "od_engine_publish_rejected_total",
                "Publishes refused with a typed PublishError",
            ),
            artifact_epoch: reg.gauge(
                "od_engine_artifact_epoch",
                "Publish epoch of the live artifact (0 = construction-time model)",
            ),
            artifact_checksum: reg.gauge(
                "od_engine_artifact_checksum",
                "FNV checksum of the live artifact",
            ),
            queue_depth: reg.gauge("od_engine_queue_depth", "Requests currently queued"),
            live_workers: reg.gauge("od_engine_live_workers", "Worker threads currently alive"),
            coalesce_hit_rate: reg.float_gauge(
                "od_engine_coalesce_hit_rate",
                "Fraction of completed requests that shared a forward",
            ),
            batch_size: reg.histogram(
                "od_engine_batch_size",
                "Requests merged per frozen forward (unitless)",
            ),
            validate_ns: reg.histogram(
                "od_request_validate_ns",
                "Admission validation time per request",
            ),
            queue_wait_ns: reg.histogram(
                "od_request_queue_wait_ns",
                "Submit to drained-by-a-worker wait per request",
            ),
            coalesce_ns: reg.histogram(
                "od_batch_coalesce_ns",
                "Coalesce-plan construction time per drained batch",
            ),
            forward_ns: (0..workers)
                .map(|i| {
                    reg.histogram_with(
                        "od_request_forward_ns",
                        "Frozen forward time per coalesced set",
                        &[("worker", &i.to_string())],
                    )
                })
                .collect(),
            scatter_ns: reg.histogram(
                "od_request_scatter_ns",
                "Post-forward scatter time per coalesced set",
            ),
            e2e_ns: reg.histogram(
                "od_request_e2e_ns",
                "Submit to response-sent latency per request",
            ),
        }
    }

    /// Refresh the hit-rate gauge from the counters (called per batch).
    pub fn update_hit_rate(&self) {
        let completed = self.completed.get();
        if completed > 0 {
            self.coalesce_hit_rate
                .set(self.coalesced_requests.get() as f64 / completed as f64);
        }
    }

    /// Zero the instantaneous series so a dropped engine stops
    /// contributing to process-wide snapshots (counters stay, monotone).
    pub fn zero_gauges(&self) {
        self.queue_depth.set(0);
        self.live_workers.set(0);
        self.coalesce_hit_rate.set(0.0);
        self.artifact_epoch.set(0);
        self.artifact_checksum.set(0);
    }
}

/// Serializable summary of a [`HistogramSnapshot`] — od-obs is
/// dependency-free, so the serde mapping lives here, on the consumer side.
#[derive(Clone, Debug, serde::Serialize)]
pub struct HistSummary {
    /// Samples recorded.
    pub count: u64,
    /// Exact sum of all samples (mod 2⁶⁴).
    pub sum: u64,
    /// Exact largest sample.
    pub max: u64,
    /// Mean sample (0 when empty).
    pub mean: f64,
    /// Conservative median upper bound.
    pub p50: u64,
    /// Conservative 95th-percentile upper bound.
    pub p95: u64,
    /// Conservative 99th-percentile upper bound.
    pub p99: u64,
    /// The non-empty buckets, in value order.
    pub buckets: Vec<HistBucket>,
}

/// One non-empty bucket of a [`HistSummary`]: `count` samples fell in the
/// inclusive `[lo, hi]` range.
#[derive(Clone, Copy, Debug, serde::Serialize)]
pub struct HistBucket {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound.
    pub hi: u64,
    /// Samples in this bucket.
    pub count: u64,
}

impl From<&HistogramSnapshot> for HistSummary {
    fn from(snap: &HistogramSnapshot) -> HistSummary {
        HistSummary {
            count: snap.count(),
            sum: snap.sum,
            max: snap.max,
            mean: snap.mean(),
            p50: snap.quantile(0.50),
            p95: snap.quantile(0.95),
            p99: snap.quantile(0.99),
            buckets: snap
                .buckets()
                .map(|b| HistBucket {
                    lo: b.lo,
                    hi: b.hi,
                    count: b.count,
                })
                .collect(),
        }
    }
}
