//! Closed-loop load generator for the [`Engine`](crate::Engine).
//!
//! `clients` threads share one engine handle; each repeatedly claims the
//! next request number, submits a clone of one of the template groups,
//! and blocks on the ticket before submitting again. Offered concurrency
//! therefore equals the client count — the standard closed-loop
//! methodology (cf. wrk's threads × connections): scaling clients with
//! workers shows how well the engine converts concurrency into coalesced
//! batches.
//!
//! Backpressure is handled by retrying the handed-back group after a
//! yield, counting every rejection. Typed failures
//! ([`ServeError`](crate::ServeError), e.g. `WorkerPanicked` under fault
//! injection) are counted as `faulted` without retry — the harness keeps
//! driving load through injected faults, which is exactly what the chaos
//! benchmark measures.

use crate::engine::{Engine, Submit};
use crate::metrics::HistSummary;
use od_obs::LatencyHistogram;
use odnet_core::{FrozenOdNet, GroupInput};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One load-generation run's results (serialized into
/// `BENCH_throughput.json` by the throughput bench).
#[derive(Clone, Debug, serde::Serialize)]
pub struct LoadReport {
    /// Worker threads in the engine under test.
    pub workers: usize,
    /// Closed-loop client threads driving it.
    pub clients: usize,
    /// Whether cross-request micro-batching was enabled.
    pub coalesce: bool,
    /// Requests completed (the measured work).
    pub requests: u64,
    /// Backpressure rejections observed (each was retried).
    pub rejected_retries: u64,
    /// Responses that differed from the precomputed direct scores —
    /// must be zero whenever verification is requested.
    pub mismatches: u64,
    /// Requests resolved with a typed error (worker panic under fault
    /// injection); zero in a fault-free run.
    pub faulted: u64,
    /// Wall-clock span of the run in seconds.
    pub elapsed_secs: f64,
    /// Completed requests per second.
    pub requests_per_sec: f64,
    /// Median request latency (submit → scores) in microseconds —
    /// conservative upper bound from the od-obs log-linear histogram
    /// (≤ 6.25% relative bucket width).
    pub p50_us: f64,
    /// 99th-percentile request latency in microseconds (same bound).
    pub p99_us: f64,
    /// Worst observed request latency in microseconds (exact: the
    /// histogram tracks the max outside the buckets).
    pub max_us: f64,
    /// Frozen forwards executed by the engine during the run.
    pub forwards: u64,
    /// Requests that shared a forward with at least one other request.
    pub coalesced_requests: u64,
    /// Mean requests merged per forward (1.0 = no coalescing).
    pub mean_requests_per_forward: f64,
    /// Distribution of requests merged per forward during this run
    /// (engine-lifetime histogram differenced across the run window).
    pub batch_hist: HistSummary,
    /// Model generations published into the engine while the run was in
    /// flight (0 for a pinned-artifact run).
    pub publishes: u64,
}

/// Drive `engine` with `total` requests drawn round-robin from `groups`,
/// from `clients` closed-loop threads.
///
/// When `expected` is given (aligned with `groups`, e.g. from
/// [`score_all`]), every response is compared bit-for-bit against the
/// direct single-threaded scores and mismatches are counted — the
/// engine-vs-oracle check the CI smoke asserts on.
pub fn drive(
    engine: &Engine,
    groups: &[GroupInput],
    expected: Option<&[Vec<(f32, f32)>]>,
    total: usize,
    clients: usize,
) -> LoadReport {
    drive_inner(engine, groups, expected, total, clients, None)
}

/// [`drive`], plus a publisher thread that hot-swaps a fresh model
/// generation into the engine every `swap_every` completed requests,
/// exercising the full publish path under closed-loop load.
///
/// `source` is called per publish and must return a model *bit-identical
/// in content* to the one the engine started with (e.g. a deep clone of
/// the same artifact): the oracle comparison against `expected` then stays
/// valid across every generation, which is exactly the property
/// `odnet serve-bench --swap-every N --check` gates on. (Distinct-content
/// swap correctness — responses matching the generation that scored them —
/// is the swap chaos test's job, via `Ticket::wait_versioned`.)
pub fn drive_swapping(
    engine: &Engine,
    groups: &[GroupInput],
    expected: Option<&[Vec<(f32, f32)>]>,
    total: usize,
    clients: usize,
    swap_every: usize,
    source: &(dyn Fn() -> Arc<FrozenOdNet> + Sync),
) -> LoadReport {
    assert!(swap_every >= 1, "swap_every must be at least 1");
    drive_inner(
        engine,
        groups,
        expected,
        total,
        clients,
        Some((swap_every, source)),
    )
}

fn drive_inner(
    engine: &Engine,
    groups: &[GroupInput],
    expected: Option<&[Vec<(f32, f32)>]>,
    total: usize,
    clients: usize,
    swap: Option<(usize, &(dyn Fn() -> Arc<FrozenOdNet> + Sync))>,
) -> LoadReport {
    assert!(!groups.is_empty(), "need at least one template group");
    assert!(clients >= 1, "need at least one client");
    if let Some(exp) = expected {
        assert_eq!(exp.len(), groups.len(), "expected scores out of sync");
    }
    let next = AtomicUsize::new(0);
    let rejected = AtomicU64::new(0);
    let mismatches = AtomicU64::new(0);
    let faulted = AtomicU64::new(0);
    let start_stats = engine.stats();
    let start_batch_hist = engine.batch_hist_raw();
    let publishes = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    // One histogram per client, merged at join: recording is one relaxed
    // fetch_add on a thread-private structure (no cross-client contention),
    // and the merged snapshot gives exact max plus ≤ 6.25%-wide
    // conservative percentiles without buffering one `u64` per request.
    let started = Instant::now();
    let latencies = std::thread::scope(|s| {
        // The publisher paces itself on completed-request counts, so the
        // swap cadence tracks offered load instead of wall time.
        let publisher = swap.map(|(every, source)| {
            let base = start_stats.completed;
            let (publishes, done) = (&publishes, &done);
            s.spawn(move || {
                let mut next_mark = every as u64;
                while !done.load(Ordering::Acquire) {
                    // Poll only the completed counter (a full stats()
                    // snapshot allocates a histogram merge), and poll
                    // coarsely: on a single-core box every publisher
                    // wakeup preempts a worker, so a kHz poll rate shows
                    // up as measurable throughput loss in the swap
                    // overhead gate.
                    let completed = engine.completed() - base;
                    if completed >= next_mark {
                        engine
                            .publish(source())
                            .expect("swap-source artifact must be publish-compatible");
                        publishes.fetch_add(1, Ordering::Relaxed);
                        next_mark += every as u64;
                    } else {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                }
            })
        });
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                s.spawn(|| {
                    let lat = LatencyHistogram::new();
                    let mut rid = String::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            break;
                        }
                        let gi = i % groups.len();
                        let mut group = groups[gi].clone();
                        // The load generator is the root of the pipeline
                        // here (no HTTP tier in front), so it opens the
                        // trace — exactly what the overhead bench measures
                        // when comparing tracing on/off. The id buffer is
                        // reused so the bench prices the tracer, not the
                        // harness's string formatting.
                        let ctx = if od_obs::trace::enabled() {
                            use std::fmt::Write as _;
                            rid.clear();
                            let _ = write!(rid, "lg-{i}");
                            od_obs::trace::global().begin(&rid)
                        } else {
                            od_obs::trace::TraceContext::NONE
                        };
                        let t0 = ctx.is_active().then(od_obs::clock::now);
                        let begin = Instant::now();
                        let outcome = loop {
                            match engine.submit_traced(group, None, ctx) {
                                Submit::Accepted(ticket) => break ticket.wait(),
                                Submit::Rejected(back) => {
                                    rejected.fetch_add(1, Ordering::Relaxed);
                                    group = back;
                                    std::thread::yield_now();
                                }
                                Submit::Invalid { error, .. } => {
                                    panic!("template group failed validation: {error}")
                                }
                            }
                        };
                        lat.record_duration(begin.elapsed());
                        if let Some(t0) = t0 {
                            od_obs::trace::global().end(
                                ctx,
                                "request",
                                t0,
                                od_obs::clock::now(),
                                outcome.is_err(),
                            );
                        }
                        match outcome {
                            Ok(scores) => {
                                if let Some(exp) = expected {
                                    if scores != exp[gi] {
                                        mismatches.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                            // Typed failure (injected worker panic): count
                            // it and keep the closed loop running.
                            Err(_) => {
                                faulted.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    lat.snapshot()
                })
            })
            .collect();
        let mut merged = od_obs::HistogramSnapshot::empty();
        for h in handles {
            merged.merge(&h.join().expect("load client must not panic"));
        }
        done.store(true, Ordering::Release);
        if let Some(p) = publisher {
            p.join().expect("swap publisher must not panic");
        }
        merged
    });
    let elapsed = started.elapsed().as_secs_f64();
    let stats = engine.stats();
    let ns_to_us = |ns: u64| ns as f64 / 1_000.0;
    let completed = stats.completed - start_stats.completed;
    let forwards = stats.forwards - start_stats.forwards;
    LoadReport {
        workers: engine.workers(),
        clients,
        coalesce: engine.coalescing(),
        requests: completed,
        rejected_retries: rejected.load(Ordering::Relaxed),
        mismatches: mismatches.load(Ordering::Relaxed),
        faulted: faulted.load(Ordering::Relaxed),
        elapsed_secs: elapsed,
        requests_per_sec: completed as f64 / elapsed.max(1e-9),
        p50_us: ns_to_us(latencies.quantile(0.50)),
        p99_us: ns_to_us(latencies.quantile(0.99)),
        max_us: ns_to_us(latencies.max),
        forwards,
        coalesced_requests: stats.coalesced_requests - start_stats.coalesced_requests,
        mean_requests_per_forward: if forwards == 0 {
            0.0
        } else {
            completed as f64 / forwards as f64
        },
        batch_hist: HistSummary::from(&engine.batch_hist_raw().delta_since(&start_batch_hist)),
        publishes: publishes.load(Ordering::Relaxed),
    }
}

/// Direct single-threaded scores of every template group — the oracle the
/// engine's concurrent output is compared against.
pub fn score_all(model: &odnet_core::FrozenOdNet, groups: &[GroupInput]) -> Vec<Vec<(f32, f32)>> {
    groups.iter().map(|g| model.score_group(g)).collect()
}

// ---- Real-socket client mode -------------------------------------------
//
// The same closed-loop methodology pointed at the HTTP tier instead of an
// in-process engine handle: each client holds one keep-alive connection
// and blocks on the wire response before submitting again. Lives here
// (not in od-http) so the throughput bench can put wire and in-process
// numbers side by side without a dependency cycle — od-http depends on
// od-serve for the funnel.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// One parsed HTTP response from the minimal blocking client.
#[derive(Clone, Debug)]
pub struct HttpResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Response headers, lowercased names, in wire order.
    pub headers: Vec<(String, String)>,
    /// The body bytes (Content-Length framing only — the tier under test
    /// never chunks responses).
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First header value with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Issue one request on an open connection and read the response.
/// `headers` are extra request headers (`Content-Length` is added for
/// `body` automatically).
pub fn http_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: Option<&[u8]>,
) -> std::io::Result<HttpResponse> {
    let mut head = format!("{method} {path} HTTP/1.1\r\n");
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    if let Some(b) = body {
        head.push_str(&format!("Content-Length: {}\r\n", b.len()));
    }
    head.push_str("\r\n");
    // One buffer, one write: head and body split across two segments
    // would hand a Nagle + delayed-ACK stall (~40ms) to every request.
    let mut wire = head.into_bytes();
    if let Some(b) = body {
        wire.extend_from_slice(b);
    }
    stream.write_all(&wire)?;
    stream.flush()?;
    read_http_response(stream)
}

/// Read one `Content-Length`-framed response off the stream.
pub fn read_http_response(stream: &mut TcpStream) -> std::io::Result<HttpResponse> {
    let bad = |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let head_end = loop {
        if let Some(at) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break at;
        }
        let mut chunk = [0u8; 1024];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(bad("connection closed before response head"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| bad("non-utf8 head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty head"))?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    for line in lines {
        let (name, value) = line.split_once(':').ok_or_else(|| bad("bad header"))?;
        let name = name.to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value.parse().map_err(|_| bad("bad content-length"))?;
        }
        headers.push((name, value));
    }
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(bad("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

/// Client-side mirror of the tier's `/v1/score` 200 body (field-name
/// compatible with `od_http::wire::ScoreResponse`; duplicated here to
/// keep the dependency arrow pointing od-http → od-serve).
#[derive(serde::Deserialize)]
struct WireScores {
    scores: Vec<(f32, f32)>,
    #[allow(dead_code)]
    epoch: u64,
    #[allow(dead_code)]
    checksum: u32,
}

/// One wire-tier load run's results (the HTTP experiment in
/// `BENCH_throughput.json`).
#[derive(Clone, Debug, serde::Serialize)]
pub struct HttpLoadReport {
    /// Closed-loop client connections driving the tier.
    pub clients: usize,
    /// Requests answered 200.
    pub requests: u64,
    /// 429 backpressure responses observed (each was retried).
    pub rejected_retries: u64,
    /// Reconnects after a server-closed connection.
    pub reconnects: u64,
    /// 200 bodies that differed bit-wise from the precomputed direct
    /// scores — must be zero whenever verification is requested.
    pub mismatches: u64,
    /// Request ids of the first few mismatched responses — the handle an
    /// operator needs to pull the matching trace from `/debug/traces`.
    pub mismatch_request_ids: Vec<String>,
    /// Responses that failed to echo the client's `X-Request-Id` — must
    /// be zero (every response carries the id, even rejections).
    pub request_id_mismatches: u64,
    /// Non-200/429 responses (typed failures surface as statuses).
    pub failed: u64,
    /// Wall-clock span of the run in seconds.
    pub elapsed_secs: f64,
    /// 200-answered requests per second.
    pub requests_per_sec: f64,
    /// Median request latency (write → full response) in microseconds.
    pub p50_us: f64,
    /// 99th-percentile request latency in microseconds.
    pub p99_us: f64,
    /// Worst observed request latency in microseconds.
    pub max_us: f64,
}

/// Drive the HTTP tier at `addr` with `total` `/v1/score` requests drawn
/// round-robin from `groups`, from `clients` closed-loop connections.
/// Mirrors [`drive`]: with `expected` given, every 200 body is decoded
/// and compared bit-for-bit against the direct single-threaded scores —
/// the vendored JSON encoder round-trips `f32` exactly, so equality here
/// means the *wire* is bit-exact, not just the engine.
pub fn drive_http(
    addr: SocketAddr,
    groups: &[GroupInput],
    expected: Option<&[Vec<(f32, f32)>]>,
    total: usize,
    clients: usize,
) -> HttpLoadReport {
    assert!(!groups.is_empty(), "need at least one template group");
    assert!(clients >= 1, "need at least one client");
    if let Some(exp) = expected {
        assert_eq!(exp.len(), groups.len(), "expected scores out of sync");
    }
    let bodies: Vec<String> = groups
        .iter()
        .map(|g| serde_json::to_string(g).expect("group serializes"))
        .collect();
    let next = AtomicUsize::new(0);
    let rejected = AtomicU64::new(0);
    let reconnects = AtomicU64::new(0);
    let mismatches = AtomicU64::new(0);
    let mismatch_ids: std::sync::Mutex<Vec<String>> = std::sync::Mutex::new(Vec::new());
    let rid_mismatches = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let completed = AtomicU64::new(0);
    let started = Instant::now();
    let latencies = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let mismatch_ids = &mismatch_ids;
                let (next, bodies) = (&next, &bodies);
                let (rejected, reconnects, mismatches) = (&rejected, &reconnects, &mismatches);
                let (rid_mismatches, failed, completed) = (&rid_mismatches, &failed, &completed);
                s.spawn(move || {
                    let lat = LatencyHistogram::new();
                    let mut conn = TcpStream::connect(addr).expect("connect load client");
                    let _ = conn.set_nodelay(true);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            break;
                        }
                        let gi = i % groups.len();
                        // Client-chosen id, echoed back by the tier on
                        // every response — the correlation handle for
                        // mismatch reports and captured traces.
                        let rid = format!("lg-{c}-{i}");
                        let begin = Instant::now();
                        loop {
                            let resp = match http_request(
                                &mut conn,
                                "POST",
                                "/v1/score",
                                &[("Content-Type", "application/json"), ("X-Request-Id", &rid)],
                                Some(bodies[gi].as_bytes()),
                            ) {
                                Ok(r) => r,
                                Err(_) => {
                                    // Server closed the connection (e.g.
                                    // mid-drain in a swap run): reconnect
                                    // and re-issue.
                                    reconnects.fetch_add(1, Ordering::Relaxed);
                                    conn = TcpStream::connect(addr).expect("reconnect load client");
                                    let _ = conn.set_nodelay(true);
                                    continue;
                                }
                            };
                            if resp.header("x-request-id") != Some(rid.as_str()) {
                                rid_mismatches.fetch_add(1, Ordering::Relaxed);
                            }
                            match resp.status {
                                200 => {
                                    completed.fetch_add(1, Ordering::Relaxed);
                                    if let Some(exp) = expected {
                                        let ok = std::str::from_utf8(&resp.body)
                                            .ok()
                                            .and_then(|s| {
                                                serde_json::from_str::<WireScores>(s).ok()
                                            })
                                            .is_some_and(|w| w.scores == exp[gi]);
                                        if !ok {
                                            mismatches.fetch_add(1, Ordering::Relaxed);
                                            let mut ids = mismatch_ids
                                                .lock()
                                                .unwrap_or_else(|e| e.into_inner());
                                            if ids.len() < 8 {
                                                ids.push(rid.clone());
                                            }
                                        }
                                    }
                                    break;
                                }
                                429 => {
                                    rejected.fetch_add(1, Ordering::Relaxed);
                                    std::thread::yield_now();
                                }
                                _ => {
                                    failed.fetch_add(1, Ordering::Relaxed);
                                    break;
                                }
                            }
                        }
                        lat.record_duration(begin.elapsed());
                    }
                    lat.snapshot()
                })
            })
            .collect();
        let mut merged = od_obs::HistogramSnapshot::empty();
        for h in handles {
            merged.merge(&h.join().expect("http load client must not panic"));
        }
        merged
    });
    let elapsed = started.elapsed().as_secs_f64();
    let ns_to_us = |ns: u64| ns as f64 / 1_000.0;
    let completed = completed.load(Ordering::Relaxed);
    HttpLoadReport {
        clients,
        requests: completed,
        rejected_retries: rejected.load(Ordering::Relaxed),
        reconnects: reconnects.load(Ordering::Relaxed),
        mismatches: mismatches.load(Ordering::Relaxed),
        mismatch_request_ids: mismatch_ids.into_inner().unwrap_or_else(|e| e.into_inner()),
        request_id_mismatches: rid_mismatches.load(Ordering::Relaxed),
        failed: failed.load(Ordering::Relaxed),
        elapsed_secs: elapsed,
        requests_per_sec: completed as f64 / elapsed.max(1e-9),
        p50_us: ns_to_us(latencies.quantile(0.50)),
        p99_us: ns_to_us(latencies.quantile(0.99)),
        max_us: ns_to_us(latencies.max),
    }
}
