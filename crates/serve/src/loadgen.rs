//! Closed-loop load generator for the [`Engine`](crate::Engine).
//!
//! `clients` threads share one engine handle; each repeatedly claims the
//! next request number, submits a clone of one of the template groups,
//! and blocks on the ticket before submitting again. Offered concurrency
//! therefore equals the client count — the standard closed-loop
//! methodology (cf. wrk's threads × connections): scaling clients with
//! workers shows how well the engine converts concurrency into coalesced
//! batches.
//!
//! Backpressure is handled by retrying the handed-back group after a
//! yield, counting every rejection. Typed failures
//! ([`ServeError`](crate::ServeError), e.g. `WorkerPanicked` under fault
//! injection) are counted as `faulted` without retry — the harness keeps
//! driving load through injected faults, which is exactly what the chaos
//! benchmark measures.

use crate::engine::{Engine, Submit};
use crate::metrics::HistSummary;
use od_obs::LatencyHistogram;
use odnet_core::GroupInput;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// One load-generation run's results (serialized into
/// `BENCH_throughput.json` by the throughput bench).
#[derive(Clone, Debug, serde::Serialize)]
pub struct LoadReport {
    /// Worker threads in the engine under test.
    pub workers: usize,
    /// Closed-loop client threads driving it.
    pub clients: usize,
    /// Whether cross-request micro-batching was enabled.
    pub coalesce: bool,
    /// Requests completed (the measured work).
    pub requests: u64,
    /// Backpressure rejections observed (each was retried).
    pub rejected_retries: u64,
    /// Responses that differed from the precomputed direct scores —
    /// must be zero whenever verification is requested.
    pub mismatches: u64,
    /// Requests resolved with a typed error (worker panic under fault
    /// injection); zero in a fault-free run.
    pub faulted: u64,
    /// Wall-clock span of the run in seconds.
    pub elapsed_secs: f64,
    /// Completed requests per second.
    pub requests_per_sec: f64,
    /// Median request latency (submit → scores) in microseconds —
    /// conservative upper bound from the od-obs log-linear histogram
    /// (≤ 6.25% relative bucket width).
    pub p50_us: f64,
    /// 99th-percentile request latency in microseconds (same bound).
    pub p99_us: f64,
    /// Worst observed request latency in microseconds (exact: the
    /// histogram tracks the max outside the buckets).
    pub max_us: f64,
    /// Frozen forwards executed by the engine during the run.
    pub forwards: u64,
    /// Requests that shared a forward with at least one other request.
    pub coalesced_requests: u64,
    /// Mean requests merged per forward (1.0 = no coalescing).
    pub mean_requests_per_forward: f64,
    /// Distribution of requests merged per forward during this run
    /// (engine-lifetime histogram differenced across the run window).
    pub batch_hist: HistSummary,
}

/// Drive `engine` with `total` requests drawn round-robin from `groups`,
/// from `clients` closed-loop threads.
///
/// When `expected` is given (aligned with `groups`, e.g. from
/// [`score_all`]), every response is compared bit-for-bit against the
/// direct single-threaded scores and mismatches are counted — the
/// engine-vs-oracle check the CI smoke asserts on.
pub fn drive(
    engine: &Engine,
    groups: &[GroupInput],
    expected: Option<&[Vec<(f32, f32)>]>,
    total: usize,
    clients: usize,
) -> LoadReport {
    assert!(!groups.is_empty(), "need at least one template group");
    assert!(clients >= 1, "need at least one client");
    if let Some(exp) = expected {
        assert_eq!(exp.len(), groups.len(), "expected scores out of sync");
    }
    let next = AtomicUsize::new(0);
    let rejected = AtomicU64::new(0);
    let mismatches = AtomicU64::new(0);
    let faulted = AtomicU64::new(0);
    let start_stats = engine.stats();
    let start_batch_hist = engine.batch_hist_raw();
    // One histogram per client, merged at join: recording is one relaxed
    // fetch_add on a thread-private structure (no cross-client contention),
    // and the merged snapshot gives exact max plus ≤ 6.25%-wide
    // conservative percentiles without buffering one `u64` per request.
    let started = Instant::now();
    let latencies = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                s.spawn(|| {
                    let lat = LatencyHistogram::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            break;
                        }
                        let gi = i % groups.len();
                        let mut group = groups[gi].clone();
                        let begin = Instant::now();
                        let outcome = loop {
                            match engine.submit(group) {
                                Submit::Accepted(ticket) => break ticket.wait(),
                                Submit::Rejected(back) => {
                                    rejected.fetch_add(1, Ordering::Relaxed);
                                    group = back;
                                    std::thread::yield_now();
                                }
                                Submit::Invalid { error, .. } => {
                                    panic!("template group failed validation: {error}")
                                }
                            }
                        };
                        lat.record_duration(begin.elapsed());
                        match outcome {
                            Ok(scores) => {
                                if let Some(exp) = expected {
                                    if scores != exp[gi] {
                                        mismatches.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                            // Typed failure (injected worker panic): count
                            // it and keep the closed loop running.
                            Err(_) => {
                                faulted.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    lat.snapshot()
                })
            })
            .collect();
        let mut merged = od_obs::HistogramSnapshot::empty();
        for h in handles {
            merged.merge(&h.join().expect("load client must not panic"));
        }
        merged
    });
    let elapsed = started.elapsed().as_secs_f64();
    let stats = engine.stats();
    let ns_to_us = |ns: u64| ns as f64 / 1_000.0;
    let completed = stats.completed - start_stats.completed;
    let forwards = stats.forwards - start_stats.forwards;
    LoadReport {
        workers: engine.workers(),
        clients,
        coalesce: engine.coalescing(),
        requests: completed,
        rejected_retries: rejected.load(Ordering::Relaxed),
        mismatches: mismatches.load(Ordering::Relaxed),
        faulted: faulted.load(Ordering::Relaxed),
        elapsed_secs: elapsed,
        requests_per_sec: completed as f64 / elapsed.max(1e-9),
        p50_us: ns_to_us(latencies.quantile(0.50)),
        p99_us: ns_to_us(latencies.quantile(0.99)),
        max_us: ns_to_us(latencies.max),
        forwards,
        coalesced_requests: stats.coalesced_requests - start_stats.coalesced_requests,
        mean_requests_per_forward: if forwards == 0 {
            0.0
        } else {
            completed as f64 / forwards as f64
        },
        batch_hist: HistSummary::from(&engine.batch_hist_raw().delta_since(&start_batch_hist)),
    }
}

/// Direct single-threaded scores of every template group — the oracle the
/// engine's concurrent output is compared against.
pub fn score_all(model: &odnet_core::FrozenOdNet, groups: &[GroupInput]) -> Vec<Vec<(f32, f32)>> {
    groups.iter().map(|g| model.score_group(g)).collect()
}
