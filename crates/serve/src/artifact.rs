//! Serving-side artifact loading: one entry point for every artifact
//! format, instrumented for cold-start observability.
//!
//! The serving cold-start path is the time between "process starts" and
//! "first request scored" — at paper scale it is dominated by artifact
//! loading, which is exactly what the `.odz` mmap path collapses (see
//! `odnet_core::artifact` and DESIGN.md §12). [`load_frozen`] wraps the
//! three load paths and records what happened into the process-global
//! [`od_obs`] registry:
//!
//! | series | kind | meaning |
//! |---|---|---|
//! | `od_artifact_load_ns` | gauge | wall time of the last artifact load |
//! | `od_artifact_bytes` | gauge | on-disk size of the last loaded artifact |
//! | `od_artifact_loads_total{mode=…}` | counter | loads by mode (json/bin/mmap) |
//!
//! `odnet metrics --artifact` renders these next to the engine series, so
//! a deployment can tell at a glance whether a replica cold-started from
//! the zero-copy path or fell back to a parse.

use odnet_core::{fnv1a_checksum, read_odz_checksum, CheckpointError, FrozenOdNet};
use std::path::Path;
use std::time::Instant;

/// Which load path [`load_frozen`] takes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArtifactMode {
    /// Parse a `FrozenOdNet::save_json` artifact (owned tables).
    Json,
    /// Read an `.odz` binary with full checksum + finiteness audit
    /// (owned tables).
    Bin,
    /// Zero-copy mmap of an `.odz` binary (borrowed tables, lazy pages).
    Mmap,
}

impl ArtifactMode {
    /// Metric label / CLI name of the mode.
    pub fn name(self) -> &'static str {
        match self {
            ArtifactMode::Json => "json",
            ArtifactMode::Bin => "bin",
            ArtifactMode::Mmap => "mmap",
        }
    }

    /// Infer the mode from a path's extension — the single extension→mode
    /// table every load path in the repo (library and CLI) goes through:
    /// `.odz` maps zero-copy, anything else parses as JSON.
    pub fn infer(path: &Path) -> ArtifactMode {
        match path.extension().and_then(|e| e.to_str()) {
            Some("odz") => ArtifactMode::Mmap,
            _ => ArtifactMode::Json,
        }
    }
}

/// A loaded serving artifact plus its content checksum — everything
/// [`Engine::new_versioned`](crate::Engine::new_versioned) and
/// [`Engine::publish_versioned`](crate::Engine::publish_versioned) need to
/// identify the generation they install.
#[derive(Debug)]
pub struct LoadedArtifact {
    /// The artifact, ready to serve (wrap in an `Arc` for the engine).
    pub frozen: FrozenOdNet,
    /// FNV-1a content checksum: the `.odz` header's meta checksum for
    /// binary artifacts (covers config/θ/weights and the table directory
    /// with its per-table FNVs — read without faulting a single table
    /// page), or a hash of the raw file bytes for JSON.
    pub checksum: u32,
    /// Which load path produced it.
    pub mode: ArtifactMode,
}

/// Load a frozen artifact for serving, recording cold-start gauges and
/// deriving the artifact's content checksum.
///
/// The returned artifact is ready to hand to
/// [`Engine::new_versioned`](crate::Engine::new_versioned) behind an
/// `Arc`; for the mmap mode the first scores will fault pages in on
/// demand, which is the point.
pub fn load_frozen(path: &Path, mode: ArtifactMode) -> Result<LoadedArtifact, CheckpointError> {
    let start = Instant::now();
    let (frozen, checksum) = match mode {
        ArtifactMode::Json => {
            let json = std::fs::read_to_string(path)
                .map_err(|e| CheckpointError::Io(format!("reading {path:?}: {e}")))?;
            (
                FrozenOdNet::load_json(&json)?,
                fnv1a_checksum(json.as_bytes()),
            )
        }
        ArtifactMode::Bin => (FrozenOdNet::load_bin(path)?, read_odz_checksum(path)?),
        ArtifactMode::Mmap => (FrozenOdNet::load_bin_mmap(path)?, read_odz_checksum(path)?),
    };
    let elapsed_ns = start.elapsed().as_nanos().min(i64::MAX as u128) as i64;
    let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    let reg = od_obs::global();
    reg.gauge(
        "od_artifact_load_ns",
        "wall time of the last serving artifact load",
    )
    .set(elapsed_ns);
    reg.gauge(
        "od_artifact_bytes",
        "on-disk size of the last loaded serving artifact",
    )
    .set(bytes.min(i64::MAX as u64) as i64);
    reg.counter_with(
        "od_artifact_loads_total",
        "artifact loads by mode",
        &[("mode", mode.name())],
    )
    .inc();
    Ok(LoadedArtifact {
        frozen,
        checksum,
        mode,
    })
}

/// [`load_frozen`] with the mode inferred from the path's extension
/// ([`ArtifactMode::infer`]) — the one entry point the CLI and the online
/// loop share.
pub fn load_frozen_auto(path: &Path) -> Result<LoadedArtifact, CheckpointError> {
    load_frozen(path, ArtifactMode::infer(path))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_inference_follows_extension() {
        assert_eq!(ArtifactMode::infer(Path::new("m.odz")), ArtifactMode::Mmap);
        assert_eq!(ArtifactMode::infer(Path::new("m.json")), ArtifactMode::Json);
        assert_eq!(ArtifactMode::infer(Path::new("model")), ArtifactMode::Json);
    }

    #[test]
    fn missing_file_is_a_typed_io_error() {
        let err = load_frozen(Path::new("/nonexistent/model.odz"), ArtifactMode::Mmap)
            .expect_err("missing file must fail");
        assert!(matches!(err, CheckpointError::Io(_)), "got {err:?}");
    }
}
