//! The typed failure vocabulary of the serving engine.
//!
//! Every way a submitted request can fail to produce scores is a
//! [`ServeError`] variant, delivered through the same oneshot channel as a
//! success — a ticket always resolves, never hangs, and never panics the
//! caller. See DESIGN.md §10 for the full failure model.

use odnet_core::InvalidInput;
use std::fmt;

/// Why a request did not come back with scores.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Admission-edge backpressure (the bounded queue was full or the
    /// engine was shutting down), or the engine was torn down with the
    /// request still queued — in both cases the request was never scored
    /// and is safe to retry against a healthy engine.
    Rejected,
    /// The request failed admission validation: its ids or sequences are
    /// inconsistent with the frozen artifact, so scoring it would be
    /// meaningless (and, unguarded, would panic a worker).
    InvalidInput(InvalidInput),
    /// The worker scoring this request's batch panicked before answering
    /// it. The supervisor respawns the worker; the request itself was not
    /// scored and is safe to retry.
    WorkerPanicked,
    /// The request's deadline passed before a worker picked it up (dropped
    /// at drain time), or [`Ticket::wait_timeout`](crate::Ticket::wait_timeout)
    /// gave up waiting.
    DeadlineExceeded,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Rejected => write!(f, "rejected by backpressure or shutdown"),
            ServeError::InvalidInput(e) => write!(f, "invalid request: {e}"),
            ServeError::WorkerPanicked => write!(f, "scoring worker panicked mid-batch"),
            ServeError::DeadlineExceeded => write!(f, "request deadline exceeded"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::InvalidInput(e) => Some(e),
            _ => None,
        }
    }
}

/// Why [`Engine::publish`](crate::Engine::publish) refused an artifact.
///
/// A published model must be drop-in compatible with the live one: requests
/// already validated and queued against the old generation may be scored by
/// the new one, so the id universe and the sequence-length admission
/// contract must match exactly. The offending artifact is simply not
/// installed — the engine keeps serving the live generation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PublishError {
    /// The offered artifact was frozen over a different user/city universe.
    UniverseMismatch {
        /// Live artifact's user universe size.
        live_users: usize,
        /// Live artifact's city universe size.
        live_cities: usize,
        /// Offered artifact's user universe size.
        offered_users: usize,
        /// Offered artifact's city universe size.
        offered_cities: usize,
    },
    /// The offered artifact admits different history-sequence lengths, so a
    /// queued request could overrun its PEC input contract.
    SequenceContractMismatch {
        /// Live artifact's `max_long_seq`.
        live_long: usize,
        /// Live artifact's `max_short_seq`.
        live_short: usize,
        /// Offered artifact's `max_long_seq`.
        offered_long: usize,
        /// Offered artifact's `max_short_seq`.
        offered_short: usize,
    },
}

impl fmt::Display for PublishError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PublishError::UniverseMismatch {
                live_users,
                live_cities,
                offered_users,
                offered_cities,
            } => write!(
                f,
                "artifact universe mismatch: live {live_users} users × {live_cities} cities, \
                 offered {offered_users} × {offered_cities}"
            ),
            PublishError::SequenceContractMismatch {
                live_long,
                live_short,
                offered_long,
                offered_short,
            } => write!(
                f,
                "artifact sequence contract mismatch: live max_long/short \
                 {live_long}/{live_short}, offered {offered_long}/{offered_short}"
            ),
        }
    }
}

impl std::error::Error for PublishError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ServeError::Rejected.to_string().contains("backpressure"));
        assert!(ServeError::WorkerPanicked.to_string().contains("panicked"));
        assert!(ServeError::DeadlineExceeded
            .to_string()
            .contains("deadline"));
    }
}
