//! The typed failure vocabulary of the serving engine.
//!
//! Every way a submitted request can fail to produce scores is a
//! [`ServeError`] variant, delivered through the same oneshot channel as a
//! success — a ticket always resolves, never hangs, and never panics the
//! caller. See DESIGN.md §10 for the full failure model.

use odnet_core::InvalidInput;
use std::fmt;

/// Why a request did not come back with scores.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Admission-edge backpressure (the bounded queue was full or the
    /// engine was shutting down), or the engine was torn down with the
    /// request still queued — in both cases the request was never scored
    /// and is safe to retry against a healthy engine.
    Rejected,
    /// The request failed admission validation: its ids or sequences are
    /// inconsistent with the frozen artifact, so scoring it would be
    /// meaningless (and, unguarded, would panic a worker).
    InvalidInput(InvalidInput),
    /// The worker scoring this request's batch panicked before answering
    /// it. The supervisor respawns the worker; the request itself was not
    /// scored and is safe to retry.
    WorkerPanicked,
    /// The request's deadline passed before a worker picked it up (dropped
    /// at drain time), or [`Ticket::wait_timeout`](crate::Ticket::wait_timeout)
    /// gave up waiting.
    DeadlineExceeded,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Rejected => write!(f, "rejected by backpressure or shutdown"),
            ServeError::InvalidInput(e) => write!(f, "invalid request: {e}"),
            ServeError::WorkerPanicked => write!(f, "scoring worker panicked mid-batch"),
            ServeError::DeadlineExceeded => write!(f, "request deadline exceeded"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::InvalidInput(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ServeError::Rejected.to_string().contains("backpressure"));
        assert!(ServeError::WorkerPanicked.to_string().contains("panicked"));
        assert!(ServeError::DeadlineExceeded
            .to_string()
            .contains("deadline"));
    }
}
