//! Full-funnel (retrieve → rank) behavior: candidate sets come from the
//! retrieval tier, rank order comes from the full model, and both stages
//! stamp the artifact generation that served them — including across hot
//! publishes, where the retrieval index must be rebuilt and re-keyed.

use od_hsg::HsgBuilder;
use od_retrieval::{RetrievalConfig, Tier};
use od_serve::{EngineConfig, Funnel, FunnelConfig};
use odnet_core::{FeatureExtractor, FrozenOdNet, GroupInput, OdNetModel, OdnetConfig, Variant};
use std::sync::{Arc, OnceLock};

struct Fixture {
    model: Arc<FrozenOdNet>,
    alt: Arc<FrozenOdNet>,
    /// One template per user, the featurization context a caller would
    /// hold (history, day, xst donors).
    templates: Vec<GroupInput>,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let ds = od_data::FliggyDataset::generate(od_data::FliggyConfig::tiny());
        let coords = ds.world.cities.iter().map(|c| c.coords).collect();
        let mut b = HsgBuilder::new(ds.world.num_users(), coords);
        for it in ds.hsg_interactions() {
            b.add_interaction(it);
        }
        let model = Arc::new(
            OdNetModel::new(
                Variant::Odnet,
                OdnetConfig::tiny(),
                ds.world.num_users(),
                ds.world.num_cities(),
                Some(b.build()),
            )
            .freeze(),
        );
        let alt = Arc::new(
            OdNetModel::new(
                Variant::OdnetG,
                OdnetConfig {
                    seed: 0xC0FFEE,
                    ..OdnetConfig::tiny()
                },
                ds.world.num_users(),
                ds.world.num_cities(),
                None,
            )
            .freeze(),
        );
        let fx = FeatureExtractor::new(6, 4);
        let templates: Vec<GroupInput> = fx
            .groups_from_samples(&ds, &ds.train)
            .into_iter()
            .take(6)
            .collect();
        assert!(templates.len() >= 2, "fixture needs user templates");
        Fixture {
            model,
            alt,
            templates,
        }
    })
}

/// The caller-side featurizer: candidates from the retrieval stage, in
/// retrieval order, grafted onto the user's context template.
fn featurize(template: &GroupInput, pairs: &[od_retrieval::ScoredPair]) -> GroupInput {
    let donor = template.candidates[0];
    let mut g = template.clone();
    g.candidates = pairs
        .iter()
        .map(|p| {
            let mut c = donor;
            c.origin = p.origin;
            c.dest = p.dest;
            c.label_o = 0.0;
            c.label_d = 0.0;
            c
        })
        .collect();
    g
}

fn funnel_over(model: &Arc<FrozenOdNet>, tier: Tier) -> Funnel {
    Funnel::new(
        Arc::clone(model),
        0xF00D,
        EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        },
        FunnelConfig {
            retrieval: RetrievalConfig::default(),
            tier,
            recall_probe_every: 1,
        },
    )
}

#[test]
fn funnel_ranks_retrieved_candidates_with_the_full_model() {
    let fix = fixture();
    for tier in [Tier::Exact, Tier::Pruned] {
        let funnel = funnel_over(&fix.model, tier);
        let template = &fix.templates[0];
        let rec = funnel
            .recommend(template.user, 8, |pairs| featurize(template, pairs))
            .expect("funnel request");
        assert_eq!(rec.pairs.len(), 8);
        assert!(rec.retrieval.scanned > 0);
        assert_eq!(rec.retrieved_by, rec.ranked_by);
        assert_eq!(rec.retrieved_by.epoch, 0);
        for p in &rec.pairs {
            assert_ne!(p.origin, p.dest);
            // The rank key is the artifact's own serving blend.
            assert_eq!(
                p.rank_score.to_bits(),
                fix.model.serving_score(p.p_origin, p.p_dest).to_bits()
            );
        }
        for w in rec.pairs.windows(2) {
            assert!(
                w[0].rank_score >= w[1].rank_score,
                "{tier:?}: funnel output not rank-ordered"
            );
        }
        funnel.shutdown();
    }
}

#[test]
fn exact_and_pruned_tiers_feed_the_same_ranker_contract() {
    let fix = fixture();
    let template = &fix.templates[1];
    let exact = funnel_over(&fix.model, Tier::Exact);
    let pruned = funnel_over(&fix.model, Tier::Pruned);
    let re = exact
        .recommend(template.user, 6, |pairs| featurize(template, pairs))
        .expect("exact funnel");
    let rp = pruned
        .recommend(template.user, 6, |pairs| featurize(template, pairs))
        .expect("pruned funnel");
    // At tiny scale the generous pruned defaults cover the whole top set,
    // and ranked scores of shared pairs must agree bit-for-bit (same
    // artifact, same kernels).
    let key = |p: &od_serve::RankedPair| (p.origin.0, p.dest.0);
    let shared: Vec<_> = re
        .pairs
        .iter()
        .filter(|p| rp.pairs.iter().any(|q| key(q) == key(p)))
        .collect();
    assert!(!shared.is_empty());
    for p in shared {
        let q = rp.pairs.iter().find(|q| key(q) == key(p)).unwrap();
        assert_eq!(p.rank_score.to_bits(), q.rank_score.to_bits());
        assert_eq!(p.retrieval_score.to_bits(), q.retrieval_score.to_bits());
    }
    // Pruned scanned no more pair candidates than exact.
    assert!(rp.retrieval.scanned <= re.retrieval.scanned);
    exact.shutdown();
    pruned.shutdown();
}

#[test]
fn hot_publish_rebuilds_and_rekeys_the_retrieval_index_mid_stream() {
    let fix = fixture();
    let funnel = funnel_over(&fix.model, Tier::Pruned);
    let template = &fix.templates[0];

    let before = funnel
        .recommend(template.user, 5, |pairs| featurize(template, pairs))
        .expect("pre-swap request");
    assert_eq!(before.retrieved_by.epoch, 0);
    assert_eq!(before.ranked_by.epoch, 0);

    // Swap generations under the live funnel.
    let v1 = funnel
        .publish(Arc::clone(&fix.alt), 0xBEEF)
        .expect("publish alt generation");
    assert_eq!(v1.epoch, 1);
    assert_eq!(funnel.retrieval_version(), v1);

    let after = funnel
        .recommend(template.user, 5, |pairs| featurize(template, pairs))
        .expect("post-swap request");
    assert_eq!(after.retrieved_by, v1, "retrieval must re-key per publish");
    assert_eq!(after.ranked_by, v1);
    // Different generation ⇒ different tables ⇒ different retrieval
    // scores (the fixture's generations are distinct by construction).
    assert_ne!(
        before.pairs[0].retrieval_score.to_bits(),
        after.pairs[0].retrieval_score.to_bits()
    );

    // Swap back mid-stream: versions keep advancing, stamps follow.
    let v2 = funnel
        .publish(Arc::clone(&fix.model), 0xF00D)
        .expect("publish original again");
    assert_eq!(v2.epoch, 2);
    let back = funnel
        .recommend(template.user, 5, |pairs| featurize(template, pairs))
        .expect("second post-swap request");
    assert_eq!(back.retrieved_by, v2);
    assert_eq!(back.ranked_by, v2);
    // Same artifact bytes as epoch 0 ⇒ the rebuilt index retrieves the
    // identical candidate set with identical scores.
    let pre: Vec<_> = before
        .pairs
        .iter()
        .map(|p| (p.origin.0, p.dest.0, p.retrieval_score.to_bits()))
        .collect();
    let post: Vec<_> = back
        .pairs
        .iter()
        .map(|p| (p.origin.0, p.dest.0, p.retrieval_score.to_bits()))
        .collect();
    assert_eq!(pre, post);
    funnel.shutdown();
}

#[test]
fn funnel_records_retrieval_metrics_and_recall_probe() {
    let fix = fixture();
    let funnel = funnel_over(&fix.model, Tier::Pruned);
    let template = &fix.templates[0];
    funnel
        .recommend(template.user, 4, |pairs| featurize(template, pairs))
        .expect("funnel request");
    let snap = od_obs::global().snapshot();
    assert!(
        snap.find_with("od_retrieval_requests_total", &[("tier", "pruned")])
            .is_some(),
        "tier-labeled request counter missing"
    );
    assert!(snap.counter("od_retrieval_scanned_total") > 0);
    assert!(snap.find("od_retrieval_scan_ns").is_some());
    assert!(snap.find("od_retrieval_select_ns").is_some());
    assert!(snap.counter("od_retrieval_index_rebuilds_total") > 0);
    // recall_probe_every = 1 ⇒ the first pruned request probes.
    let recall = snap
        .find("od_retrieval_recall")
        .expect("recall gauge missing");
    let _ = recall;
    funnel.shutdown();
}
