//! The engine is the newest link in the oracle chain: live tape → batched
//! → frozen → **concurrent engine**. Under any worker count, batch size,
//! and interleaving, engine responses must be *bit-identical* to direct
//! single-threaded `FrozenOdNet::score_group` calls — coalescing must be
//! observationally invisible.

use od_hsg::HsgBuilder;
use od_serve::{drive, score_all, Engine, EngineConfig, PublishError, Submit, Ticket};
use odnet_core::{FeatureExtractor, FrozenOdNet, GroupInput, OdNetModel, OdnetConfig, Variant};
use std::sync::{Arc, OnceLock};

/// Compile-time checks: everything that crosses a thread boundary at
/// serve time must be `Send + Sync`.
#[allow(dead_code)]
fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn serving_types_are_send_sync() {
    assert_send_sync::<FrozenOdNet>();
    assert_send_sync::<GroupInput>();
    assert_send_sync::<Engine>();
    assert_send_sync::<EngineConfig>();
    assert_send_sync::<Ticket>();
}

struct Fixture {
    model: Arc<FrozenOdNet>,
    /// Mixed-size scoring templates: several distinct user contexts, each
    /// at several candidate counts (1 up to the full recall set).
    groups: Vec<GroupInput>,
    /// Direct single-threaded scores of every template (the oracle).
    expected: Vec<Vec<(f32, f32)>>,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let ds = od_data::FliggyDataset::generate(od_data::FliggyConfig::tiny());
        let coords = ds.world.cities.iter().map(|c| c.coords).collect();
        let mut b = HsgBuilder::new(ds.world.num_users(), coords);
        for it in ds.hsg_interactions() {
            b.add_interaction(it);
        }
        let model = OdNetModel::new(
            Variant::Odnet,
            OdnetConfig::tiny(),
            ds.world.num_users(),
            ds.world.num_cities(),
            Some(b.build()),
        );
        let fx = FeatureExtractor::new(6, 4);
        let mut groups = Vec::new();
        for base in fx.groups_from_samples(&ds, &ds.train).into_iter().take(8) {
            for n in [1, 2, base.candidates.len()] {
                let mut g = base.clone();
                g.candidates.truncate(n);
                groups.push(g);
            }
        }
        assert!(groups.len() >= 16, "fixture needs a healthy template pool");
        let model = Arc::new(model.freeze());
        let expected = score_all(&model, &groups);
        Fixture {
            model,
            groups,
            expected,
        }
    })
}

/// The satellite's headline test: 8 threads × 100 mixed-size groups
/// through the engine equal the single-threaded scores exactly.
#[test]
fn concurrent_engine_matches_direct_scoring_bitwise() {
    let fix = fixture();
    let engine = Engine::new(
        Arc::clone(&fix.model),
        EngineConfig {
            workers: 2,
            queue_capacity: 256,
            max_batch: 16,
            coalesce: true,
            fail_point: None,
            stage_timing: true,
            ..EngineConfig::default()
        },
    );
    let report = drive(&engine, &fix.groups, Some(&fix.expected), 800, 8);
    assert_eq!(report.mismatches, 0, "engine diverged from direct scoring");
    assert_eq!(report.requests, 800);
    let stats = engine.stats();
    assert_eq!(stats.completed, 800);
    assert_eq!(stats.submitted, 800);
    // Histogram bookkeeping: every forward is binned, batch sizes sum back
    // to the completed requests. At max_batch = 16 every size lands in an
    // exact (lo == hi) bucket of the log-linear histogram, so the weighted
    // sum is recoverable from the buckets and must agree with the exact
    // tracked sum.
    assert_eq!(stats.batch_hist.count, stats.forwards);
    let weighted: u64 = stats
        .batch_hist
        .buckets
        .iter()
        .map(|b| {
            assert_eq!(b.lo, b.hi, "batch sizes < 32 bin exactly");
            b.lo * b.count
        })
        .sum();
    assert_eq!(weighted, stats.completed);
    assert_eq!(stats.batch_hist.sum, stats.completed);
}

/// Coalescing disabled must also match the oracle (and never merge).
#[test]
fn no_coalesce_engine_matches_direct_scoring_bitwise() {
    let fix = fixture();
    let engine = Engine::new(
        Arc::clone(&fix.model),
        EngineConfig {
            workers: 2,
            queue_capacity: 256,
            max_batch: 16,
            coalesce: false,
            fail_point: None,
            stage_timing: true,
            ..EngineConfig::default()
        },
    );
    let report = drive(&engine, &fix.groups, Some(&fix.expected), 400, 8);
    assert_eq!(report.mismatches, 0);
    let stats = engine.stats();
    assert_eq!(stats.coalesced_requests, 0, "coalescing was disabled");
    assert_eq!(stats.forwards, stats.completed);
}

/// Same-context concurrent requests do get merged, and merged responses
/// still carry each request's own candidate slice.
#[test]
fn coalescing_engages_for_same_context_bursts() {
    let fix = fixture();
    // Retry a few times: coalescing needs requests to be *pending
    // together*, which the scheduler does not strictly guarantee.
    for attempt in 0..20 {
        let engine = Engine::new(
            Arc::clone(&fix.model),
            EngineConfig {
                workers: 1,
                queue_capacity: 256,
                max_batch: 64,
                coalesce: true,
                fail_point: None,
                stage_timing: true,
                ..EngineConfig::default()
            },
        );
        // One template, submitted as a burst before waiting on anything.
        let gi = 0;
        let tickets: Vec<Ticket> = (0..32)
            .map(|_| match engine.submit(fix.groups[gi].clone()) {
                Submit::Accepted(t) => t,
                _ => panic!("queue sized for the burst"),
            })
            .collect();
        for t in tickets {
            assert_eq!(
                t.wait().expect("scored"),
                fix.expected[gi],
                "scores must not depend on merging"
            );
        }
        if engine.stats().coalesced_requests > 0 {
            return;
        }
        assert!(attempt < 19, "32-request bursts never coalesced in 20 runs");
    }
}

/// A full queue rejects instead of buffering, handing the group back.
#[test]
fn backpressure_rejects_and_returns_the_group() {
    let fix = fixture();
    // No workers: nothing drains the queue, so rejection is deterministic.
    let engine = Engine::new(
        Arc::clone(&fix.model),
        EngineConfig {
            workers: 0,
            queue_capacity: 3,
            max_batch: 8,
            coalesce: true,
            fail_point: None,
            stage_timing: true,
            ..EngineConfig::default()
        },
    );
    let mut tickets = Vec::new();
    for _ in 0..3 {
        match engine.submit(fix.groups[1].clone()) {
            Submit::Accepted(t) => tickets.push(t),
            _ => panic!("queue not full yet"),
        }
    }
    match engine.submit(fix.groups[1].clone()) {
        Submit::Rejected(back) => {
            assert_eq!(back.candidates.len(), fix.groups[1].candidates.len());
            assert_eq!(back.user, fix.groups[1].user);
        }
        _ => panic!("4th submit must bounce off capacity 3"),
    }
    let stats = engine.stats();
    assert_eq!((stats.submitted, stats.rejected), (3, 1));
    // Tickets are intentionally dropped unanswered: with zero workers the
    // engine cannot score them, and dropping the engine must not hang.
    drop(tickets);
}

/// Dropping the engine drains accepted requests before the workers exit —
/// accepted work is never lost.
#[test]
fn shutdown_drains_pending_requests() {
    let fix = fixture();
    let engine = Engine::new(
        Arc::clone(&fix.model),
        EngineConfig {
            workers: 1,
            queue_capacity: 64,
            max_batch: 4,
            coalesce: true,
            fail_point: None,
            stage_timing: true,
            ..EngineConfig::default()
        },
    );
    let tickets: Vec<(usize, Ticket)> = (0..10)
        .map(|i| {
            let gi = i % fix.groups.len();
            match engine.submit(fix.groups[gi].clone()) {
                Submit::Accepted(t) => (gi, t),
                _ => panic!("queue sized for the burst"),
            }
        })
        .collect();
    drop(engine);
    for (gi, t) in tickets {
        assert_eq!(t.wait().expect("drained and scored"), fix.expected[gi]);
    }
}

/// After a loaded run, the stage clock has populated every request
/// lifecycle histogram in the process-global registry, and the
/// stage-timing-off path still scores correctly (its sites reduce to a
/// never-taken branch; the 3% overhead gate in ci.sh covers the cost).
#[test]
fn stage_clock_populates_lifecycle_histograms() {
    let fix = fixture();
    let engine = Engine::new(
        Arc::clone(&fix.model),
        EngineConfig {
            workers: 2,
            queue_capacity: 256,
            max_batch: 16,
            coalesce: true,
            fail_point: None,
            stage_timing: true,
            ..EngineConfig::default()
        },
    );
    let report = drive(&engine, &fix.groups, Some(&fix.expected), 200, 4);
    assert_eq!(report.mismatches, 0);
    let snap = od_obs::global().snapshot();
    for name in [
        "od_request_validate_ns",
        "od_request_queue_wait_ns",
        "od_batch_coalesce_ns",
        "od_request_scatter_ns",
        "od_request_e2e_ns",
        "od_engine_batch_size",
    ] {
        assert!(
            snap.histogram(name).count() > 0,
            "{name} must have samples after a loaded run"
        );
    }
    // Forward time is labeled per worker slot; at least one slot must
    // have recorded.
    let forwards: u64 = snap
        .series
        .iter()
        .filter(|s| s.name == "od_request_forward_ns")
        .map(|s| match &s.value {
            od_obs::Value::Histogram(h) => h.count(),
            _ => 0,
        })
        .sum();
    assert!(forwards > 0, "per-worker forward histograms must populate");
    assert!(snap.counter("od_engine_completed_total") >= 200);

    // The timing-off path: identical scores, no crash, no stage samples
    // needed — only the branch.
    let quiet = Engine::new(
        Arc::clone(&fix.model),
        EngineConfig {
            workers: 2,
            queue_capacity: 256,
            max_batch: 16,
            coalesce: true,
            fail_point: None,
            stage_timing: false,
            ..EngineConfig::default()
        },
    );
    let report = drive(&quiet, &fix.groups, Some(&fix.expected), 200, 4);
    assert_eq!(report.mismatches, 0);
    assert_eq!(report.requests, 200);
}

/// A graph-free generation over the given universe — publish-compatible
/// with the fixture model or not, depending on `config` and the sizes.
fn generation(config: OdnetConfig, users: usize, cities: usize) -> Arc<FrozenOdNet> {
    Arc::new(OdNetModel::new(Variant::OdnetG, config, users, cities, None).freeze())
}

/// Publishing extends the oracle chain across generations: after a swap,
/// engine responses are bit-identical to direct `score_group` on the *new*
/// artifact, and `EngineHealth` reports the new epoch + checksum.
#[test]
fn published_generation_scores_bitwise_and_updates_health() {
    let fix = fixture();
    let engine = Engine::new(
        Arc::clone(&fix.model),
        EngineConfig {
            workers: 2,
            queue_capacity: 256,
            max_batch: 16,
            coalesce: true,
            fail_point: None,
            stage_timing: true,
            ..EngineConfig::default()
        },
    );
    assert_eq!(engine.health().artifact_epoch, 0);
    let report = drive(&engine, &fix.groups, Some(&fix.expected), 200, 4);
    assert_eq!(report.mismatches, 0);

    let next = generation(
        OdnetConfig {
            seed: 0xDECADE,
            ..OdnetConfig::tiny()
        },
        fix.model.num_users(),
        fix.model.num_cities(),
    );
    let next_expected = score_all(&next, &fix.groups);
    assert_ne!(next_expected[0], fix.expected[0], "generations differ");
    let version = engine.publish(Arc::clone(&next)).expect("compatible");
    assert_eq!(version.epoch, 1);
    assert_eq!(version.checksum, next.fingerprint());

    let report = drive(&engine, &fix.groups, Some(&next_expected), 200, 4);
    assert_eq!(
        report.mismatches, 0,
        "post-publish responses must match the new generation bit-for-bit"
    );
    let health = engine.health();
    assert_eq!(health.artifact_epoch, 1);
    assert_eq!(health.artifact_checksum, next.fingerprint());
    assert_eq!(health.publishes, 1);
    assert_eq!(health.publish_rejected, 0);
}

/// Incompatible artifacts are refused with a typed error and the live
/// generation keeps serving untouched: a different id universe
/// (`UniverseMismatch`) and a different sequence contract
/// (`SequenceContractMismatch`) — requests validated against the live
/// generation's limits must stay scoreable by whatever generation drains
/// them.
#[test]
fn incompatible_publish_is_rejected_with_typed_errors() {
    let fix = fixture();
    let engine = Engine::new(
        Arc::clone(&fix.model),
        EngineConfig {
            workers: 1,
            queue_capacity: 64,
            max_batch: 16,
            coalesce: true,
            fail_point: None,
            stage_timing: true,
            ..EngineConfig::default()
        },
    );
    let (users, cities) = (fix.model.num_users(), fix.model.num_cities());

    let small_universe = generation(OdnetConfig::tiny(), users, cities - 1);
    match engine.publish(small_universe) {
        Err(PublishError::UniverseMismatch {
            live_cities,
            offered_cities,
            ..
        }) => {
            assert_eq!((live_cities, offered_cities), (cities, cities - 1));
        }
        other => panic!("expected UniverseMismatch, got {other:?}"),
    }

    let longer_seqs = generation(
        OdnetConfig {
            max_long_seq: OdnetConfig::tiny().max_long_seq + 1,
            ..OdnetConfig::tiny()
        },
        users,
        cities,
    );
    match engine.publish(longer_seqs) {
        Err(PublishError::SequenceContractMismatch {
            live_long,
            offered_long,
            ..
        }) => {
            assert_eq!(live_long, OdnetConfig::tiny().max_long_seq);
            assert_eq!(offered_long, OdnetConfig::tiny().max_long_seq + 1);
        }
        other => panic!("expected SequenceContractMismatch, got {other:?}"),
    }

    // Rejections are counted, the epoch did not advance, and the original
    // generation still serves bit-exact scores.
    let health = engine.health();
    assert_eq!(health.publish_rejected, 2);
    assert_eq!(health.publishes, 0);
    assert_eq!(health.artifact_epoch, 0);
    assert_eq!(
        engine.score(fix.groups[0].clone()).expect("still serving"),
        fix.expected[0]
    );
}

/// Candidate-free requests are legal and answered with an empty score set.
#[test]
fn empty_group_scores_to_empty() {
    let fix = fixture();
    let engine = Engine::new(Arc::clone(&fix.model), EngineConfig::default());
    let mut g = fix.groups[0].clone();
    g.candidates.clear();
    assert_eq!(engine.score(g).expect("accepted"), Vec::new());
}
