//! Property test: every trace the funnel emits is a well-formed span
//! tree — one root, unique ids, resolvable parents, children nested
//! inside their parent's interval — regardless of how the artifact was
//! loaded (owned `.odz` read vs zero-copy mmap) and across a hot publish
//! mid-sequence. The funnel records against the process-global tracer,
//! so this file holds exactly one test and tags every request id with a
//! per-case nonce to filter its own traces out of the shared ring.

use od_hsg::HsgBuilder;
use od_obs::trace::{self, check_well_formed, TraceConfig};
use od_retrieval::{RetrievalConfig, Tier};
use od_serve::{EngineConfig, Funnel, FunnelConfig};
use odnet_core::{FeatureExtractor, FrozenOdNet, GroupInput, OdNetModel, OdnetConfig, Variant};
use proptest::prelude::*;
use proptest::TestCaseError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

struct Fixture {
    /// The artifact read back owned from a frozen `.odz`.
    owned: Arc<FrozenOdNet>,
    /// The same file mapped zero-copy.
    mapped: Arc<FrozenOdNet>,
    /// A second generation to hot-publish mid-sequence.
    alt: Arc<FrozenOdNet>,
    templates: Vec<GroupInput>,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let ds = od_data::FliggyDataset::generate(od_data::FliggyConfig::tiny());
        let coords = ds.world.cities.iter().map(|c| c.coords).collect();
        let mut b = HsgBuilder::new(ds.world.num_users(), coords);
        for it in ds.hsg_interactions() {
            b.add_interaction(it);
        }
        let frozen = OdNetModel::new(
            Variant::Odnet,
            OdnetConfig::tiny(),
            ds.world.num_users(),
            ds.world.num_cities(),
            Some(b.build()),
        )
        .freeze();
        let path = std::env::temp_dir().join(format!("od_trace_spans_{}.odz", std::process::id()));
        frozen.save_bin(&path).expect("save .odz");
        let owned = Arc::new(FrozenOdNet::load_bin(&path).expect("owned read"));
        let mapped = Arc::new(FrozenOdNet::load_bin_mmap(&path).expect("mmap read"));
        let alt = Arc::new(
            OdNetModel::new(
                Variant::OdnetG,
                OdnetConfig {
                    seed: 0xC0FFEE,
                    ..OdnetConfig::tiny()
                },
                ds.world.num_users(),
                ds.world.num_cities(),
                None,
            )
            .freeze(),
        );
        let fx = FeatureExtractor::new(6, 4);
        let templates: Vec<GroupInput> = fx
            .groups_from_samples(&ds, &ds.train)
            .into_iter()
            .take(6)
            .collect();
        assert!(templates.len() >= 2, "fixture needs user templates");
        Fixture {
            owned,
            mapped,
            alt,
            templates,
        }
    })
}

/// Graft retrieved candidates onto the user's context template (the
/// caller-side featurizer a recommend route would hold).
fn featurize(template: &GroupInput, pairs: &[od_retrieval::ScoredPair]) -> GroupInput {
    let donor = template.candidates[0];
    let mut g = template.clone();
    g.candidates = pairs
        .iter()
        .map(|p| {
            let mut c = donor;
            c.origin = p.origin;
            c.dest = p.dest;
            c.label_o = 0.0;
            c.label_d = 0.0;
            c
        })
        .collect();
    g
}

fn funnel_over(model: &Arc<FrozenOdNet>, checksum: u32) -> Funnel {
    Funnel::new(
        Arc::clone(model),
        checksum,
        EngineConfig {
            workers: 2,
            queue_capacity: 64,
            max_batch: 16,
            coalesce: true,
            fail_point: None,
            stage_timing: true,
            ..EngineConfig::default()
        },
        FunnelConfig {
            retrieval: RetrievalConfig::default(),
            tier: Tier::Exact,
            recall_probe_every: 0,
        },
    )
}

/// Distinguishes this case's request ids in the process-global ring.
static CASE: AtomicU64 = AtomicU64::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn traced_span_trees_stay_well_formed_across_load_paths_and_swaps(
        mmap in prop::bool::ANY,
        // Publish before request `swap_at`; draws at/above `n` mean the
        // sequence runs pinned, so both shapes are exercised.
        swap_at in (0usize..8).prop_map(|v| v.checked_sub(1)),
        n in 2usize..6,
        k in 1usize..5,
    ) {
        let fix = fixture();
        let tracer = trace::global();
        // Keep every trace: the property is about span-tree shape, not
        // the tail decision (trace_hammer covers sampling).
        tracer.enable(TraceConfig { slow_ns: 0, sample_every: 1 });
        let model = if mmap { &fix.mapped } else { &fix.owned };
        let funnel = funnel_over(model, 0xF1A7);
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let mut want = Vec::new();
        let mut epoch = 0u64;
        for i in 0..n {
            if swap_at == Some(i) {
                funnel
                    .publish(Arc::clone(&fix.alt), 0xA17A)
                    .expect("hot publish");
                epoch = funnel.retrieval_version().epoch;
                prop_assert!(epoch > 0, "publish must advance the epoch");
            }
            let tpl = &fix.templates[i % fix.templates.len()];
            let rid = format!("pt-{case}-{i}");
            let t0 = od_obs::clock::now();
            let ctx = tracer.begin(&rid);
            prop_assert!(ctx.is_active(), "enabled tracer must hand out a slot");
            let rec = funnel.recommend_traced(tpl.user, k, None, ctx, |pairs| {
                featurize(tpl, pairs)
            });
            let kept = tracer.end(ctx, "request", t0, od_obs::clock::now(), rec.is_err());
            let rec = rec.expect("funnel recommend succeeds");
            prop_assert!(!rec.pairs.is_empty(), "retrieval found candidates");
            prop_assert!(kept, "slow_ns=0 keeps every trace");
            want.push((rid, epoch));
        }
        let snap = tracer.snapshot(0, false, 256);
        for (rid, epoch) in &want {
            let t = snap
                .iter()
                .find(|t| t.request_id == *rid)
                .expect("kept trace reached the ring");
            if let Err(why) = check_well_formed(t) {
                return Err(TestCaseError::fail(format!("trace {rid}: {why}")));
            }
            let names: Vec<&str> = t.spans.iter().map(|s| s.name).collect();
            for stage in ["retrieval", "forward", "request"] {
                prop_assert!(
                    names.contains(&stage),
                    "trace {rid} is missing the {stage} span (spans: {names:?})"
                );
            }
            // Both stamped stages carry the generation that served them,
            // reflecting the mid-sequence publish.
            for stage in ["retrieval", "forward"] {
                let span = t.spans.iter().find(|s| s.name == stage).expect("present");
                let stamped = span
                    .attrs
                    .iter()
                    .find(|(k, _)| *k == "epoch")
                    .map(|(_, v)| *v);
                prop_assert_eq!(
                    stamped,
                    Some(*epoch),
                    "{} span epoch attribute on trace {}",
                    stage,
                    rid
                );
            }
        }
    }
}
