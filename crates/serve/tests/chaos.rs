//! Fault-injection harness: the engine under deliberately injected
//! failures. The contract being asserted, end to end:
//!
//! - every accepted ticket resolves exactly once (no hangs, no panics in
//!   callers), with scores or a typed [`ServeError`];
//! - responses that survive a fault are *bit-identical* to direct
//!   single-threaded `FrozenOdNet::score_group` — a panic next door never
//!   perturbs anyone else's scores;
//! - the supervisor joins every panicked worker and respawns it: the pool
//!   recovers to its configured size and [`EngineHealth`] counters
//!   reconcile exactly with the injected fault count;
//! - no worker or supervisor thread leaks across the engine's lifetime.
//!
//! Engine-lifecycle tests share one process, so tests that count OS
//! threads or rely on global batch sequence numbers serialize on
//! `TEST_LOCK`.

use od_hsg::HsgBuilder;
use od_serve::{score_all, Engine, EngineConfig, FailPoint, FailSite, ServeError, Submit, Ticket};
use odnet_core::{FeatureExtractor, FrozenOdNet, GroupInput, OdNetModel, OdnetConfig, Variant};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Serializes the engine-lifecycle tests in this binary: they count OS
/// threads by name, which only works one engine at a time.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    // A previous test failing while holding the lock poisons it; the lock
    // only guards "one engine at a time", so recovery is always sound.
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Count live threads of this process whose name starts with `od-serve`
/// (workers and the supervisor).
fn serve_threads() -> usize {
    let mut n = 0;
    if let Ok(dir) = std::fs::read_dir("/proc/self/task") {
        for entry in dir.flatten() {
            if let Ok(comm) = std::fs::read_to_string(entry.path().join("comm")) {
                if comm.trim_end().starts_with("od-serve") {
                    n += 1;
                }
            }
        }
    }
    n
}

struct Fixture {
    model: Arc<FrozenOdNet>,
    groups: Vec<GroupInput>,
    expected: Vec<Vec<(f32, f32)>>,
    /// Three publish-compatible generations with *distinct* weights
    /// (graph-free variant, different init seeds) and their own oracle
    /// scores — `alt_expected[g][gi]` is generation `g`'s direct scores
    /// of `groups[gi]`. The swap tests publish these and check every
    /// response against the generation its version stamp names.
    alt_models: Vec<Arc<FrozenOdNet>>,
    alt_expected: Vec<Vec<Vec<(f32, f32)>>>,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let ds = od_data::FliggyDataset::generate(od_data::FliggyConfig::tiny());
        let coords = ds.world.cities.iter().map(|c| c.coords).collect();
        let mut b = HsgBuilder::new(ds.world.num_users(), coords);
        for it in ds.hsg_interactions() {
            b.add_interaction(it);
        }
        let model = OdNetModel::new(
            Variant::Odnet,
            OdnetConfig::tiny(),
            ds.world.num_users(),
            ds.world.num_cities(),
            Some(b.build()),
        );
        let fx = FeatureExtractor::new(6, 4);
        let groups: Vec<GroupInput> = fx
            .groups_from_samples(&ds, &ds.train)
            .into_iter()
            .take(8)
            .collect();
        assert!(groups.len() >= 8);
        let model = Arc::new(model.freeze());
        let expected = score_all(&model, &groups);
        let alt_models: Vec<Arc<FrozenOdNet>> = (1..=3u64)
            .map(|s| {
                let cfg = OdnetConfig {
                    seed: 0xC0FFEE + s,
                    ..OdnetConfig::tiny()
                };
                Arc::new(
                    OdNetModel::new(
                        Variant::OdnetG,
                        cfg,
                        ds.world.num_users(),
                        ds.world.num_cities(),
                        None,
                    )
                    .freeze(),
                )
            })
            .collect();
        let alt_expected: Vec<Vec<Vec<(f32, f32)>>> =
            alt_models.iter().map(|m| score_all(m, &groups)).collect();
        // The swap tests are only meaningful if the generations actually
        // score differently.
        for alt in &alt_expected {
            assert_ne!(alt[0], expected[0], "generations must be distinct");
        }
        Fixture {
            model,
            groups,
            expected,
            alt_models,
            alt_expected,
        }
    })
}

/// A fail point that panics when draining the batches with the given
/// (engine-global) sequence numbers — the fixed fault seed of the suite.
fn panic_at_batches(seqs: &'static [u64]) -> FailPoint {
    Arc::new(move |site, seq| {
        if site == FailSite::BeforeBatch && seqs.contains(&seq) {
            panic!("injected chaos fault at batch {seq}");
        }
    })
}

/// A fail point that blocks batch 0 at `BeforeBatch` until released,
/// signalling entry — lets a test deterministically order "worker is busy"
/// against its own submits.
struct Gate {
    entered: AtomicBool,
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Arc<Gate> {
        Arc::new(Gate {
            entered: AtomicBool::new(false),
            open: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    fn fail_point(self: &Arc<Gate>) -> FailPoint {
        let gate = Arc::clone(self);
        Arc::new(move |site, seq| {
            if site == FailSite::BeforeBatch && seq == 0 {
                gate.entered.store(true, Ordering::SeqCst);
                let mut open = gate.open.lock().unwrap();
                while !*open {
                    open = gate.cv.wait(open).unwrap();
                }
            }
        })
    }

    fn wait_entered(&self) {
        let start = Instant::now();
        while !self.entered.load(Ordering::SeqCst) {
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "worker never drained batch 0"
            );
            std::thread::yield_now();
        }
    }

    fn release(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

/// The headline chaos test: 3 injected worker panics under 8-thread load.
#[test]
fn injected_panics_are_isolated_and_supervised() {
    let _guard = test_lock();
    let fix = fixture();
    let baseline_threads = serve_threads();
    const FAULT_SEQS: &[u64] = &[3, 7, 11];
    let engine = Engine::new(
        Arc::clone(&fix.model),
        EngineConfig {
            workers: 2,
            queue_capacity: 256,
            max_batch: 16,
            coalesce: true,
            fail_point: Some(panic_at_batches(FAULT_SEQS)),
            stage_timing: true,
            ..EngineConfig::default()
        },
    );

    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 100;
    let ok = AtomicUsize::new(0);
    let faulted = AtomicUsize::new(0);
    let mismatches = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for c in 0..CLIENTS {
            let ok = &ok;
            let faulted = &faulted;
            let mismatches = &mismatches;
            let engine = &engine;
            s.spawn(move || {
                for i in 0..PER_CLIENT {
                    let gi = (c * PER_CLIENT + i) % fix.groups.len();
                    let mut group = fix.groups[gi].clone();
                    let outcome = loop {
                        match engine.submit(group) {
                            Submit::Accepted(t) => break t.wait(),
                            Submit::Rejected(back) => {
                                group = back;
                                std::thread::yield_now();
                            }
                            Submit::Invalid { error, .. } => {
                                panic!("fixture group failed validation: {error}")
                            }
                        }
                    };
                    match outcome {
                        Ok(scores) => {
                            if scores == fix.expected[gi] {
                                ok.fetch_add(1, Ordering::Relaxed);
                            } else {
                                mismatches.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(ServeError::WorkerPanicked) => {
                            faulted.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected serve error under chaos: {e}"),
                    }
                }
            });
        }
    });

    // Every ticket resolved (the scope joined); surviving responses were
    // bit-identical to the oracle.
    assert_eq!(
        mismatches.load(Ordering::Relaxed),
        0,
        "fault perturbed a survivor's scores"
    );
    let ok = ok.load(Ordering::Relaxed);
    let faulted = faulted.load(Ordering::Relaxed);
    assert_eq!(
        ok + faulted,
        CLIENTS * PER_CLIENT,
        "every request resolved exactly once"
    );
    assert!(
        faulted >= FAULT_SEQS.len(),
        "each injected batch fault kills at least one request (got {faulted})"
    );

    // The supervisor converges: every panic joined and respawned, the pool
    // back at its configured size.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let h = engine.health();
        if h.worker_panics == FAULT_SEQS.len() as u64
            && h.respawns == h.worker_panics
            && h.live_workers == h.configured_workers
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "supervisor did not converge: {:?}",
            engine.health()
        );
        std::thread::sleep(Duration::from_millis(1));
    }

    // Counters reconcile exactly with what the clients observed.
    let stats = engine.stats();
    assert_eq!(stats.completed, ok as u64);
    assert_eq!(stats.panicked_requests, faulted as u64);
    assert_eq!(stats.submitted, (ok + faulted) as u64);
    assert_eq!(stats.expired, 0);
    assert_eq!(stats.invalid, 0);

    // The healed pool still scores correctly (batch seqs are past the
    // fault seed now).
    assert_eq!(
        engine
            .score(fix.groups[0].clone())
            .expect("healed engine scores"),
        fix.expected[0]
    );

    drop(engine);
    assert_eq!(
        serve_threads(),
        baseline_threads,
        "worker/supervisor threads leaked past engine teardown"
    );
}

/// Deadlines are enforced at drain time: a request whose deadline passed
/// while queued resolves with `DeadlineExceeded` instead of being scored
/// late.
#[test]
fn expired_requests_are_dropped_at_drain_time() {
    let _guard = test_lock();
    let fix = fixture();
    let gate = Gate::new();
    let engine = Engine::new(
        Arc::clone(&fix.model),
        EngineConfig {
            workers: 1,
            queue_capacity: 64,
            max_batch: 16,
            coalesce: true,
            fail_point: Some(gate.fail_point()),
            stage_timing: true,
            ..EngineConfig::default()
        },
    );
    // Request A occupies the worker (its batch parks at the gate)...
    let ta = match engine.submit(fix.groups[0].clone()) {
        Submit::Accepted(t) => t,
        _ => panic!("submit A"),
    };
    gate.wait_entered();
    // ...so B is guaranteed to still be queued when its deadline (now)
    // passes; the worker must drop it at the next drain.
    let tb = match engine.submit_with_deadline(fix.groups[1].clone(), Some(Instant::now())) {
        Submit::Accepted(t) => t,
        _ => panic!("submit B"),
    };
    gate.release();
    assert_eq!(ta.wait().expect("A was scored"), fix.expected[0]);
    assert_eq!(tb.wait(), Err(ServeError::DeadlineExceeded));
    let stats = engine.stats();
    assert_eq!(stats.expired, 1);
    assert_eq!(stats.completed, 1);
    assert_eq!(engine.health().expired, 1);
}

/// `wait_timeout` bounds the caller even when nothing will ever answer
/// (a stalled/workerless engine), and tearing the engine down afterwards
/// neither hangs nor panics.
#[test]
fn wait_timeout_bounds_waiting_on_a_stalled_engine() {
    let _guard = test_lock();
    let fix = fixture();
    let engine = Engine::new(
        Arc::clone(&fix.model),
        EngineConfig {
            workers: 0,
            queue_capacity: 8,
            max_batch: 8,
            coalesce: true,
            fail_point: None,
            stage_timing: true,
            ..EngineConfig::default()
        },
    );
    let t = match engine.submit(fix.groups[0].clone()) {
        Submit::Accepted(t) => t,
        _ => panic!("submit"),
    };
    let begin = Instant::now();
    assert_eq!(
        t.wait_timeout(Duration::from_millis(20)),
        Err(ServeError::DeadlineExceeded)
    );
    assert!(
        begin.elapsed() < Duration::from_secs(5),
        "wait_timeout must be bounded"
    );
}

/// A caller whose `wait_timeout` expires while the worker is mid-batch:
/// the late response lands in a dropped receiver harmlessly, and the
/// engine keeps serving.
#[test]
fn late_response_after_wait_timeout_is_harmless() {
    let _guard = test_lock();
    let fix = fixture();
    let gate = Gate::new();
    let engine = Engine::new(
        Arc::clone(&fix.model),
        EngineConfig {
            workers: 1,
            queue_capacity: 64,
            max_batch: 16,
            coalesce: true,
            fail_point: Some(gate.fail_point()),
            stage_timing: true,
            ..EngineConfig::default()
        },
    );
    let t = match engine.submit(fix.groups[0].clone()) {
        Submit::Accepted(t) => t,
        _ => panic!("submit"),
    };
    gate.wait_entered();
    // The worker is parked before scoring; the caller gives up first.
    assert_eq!(
        t.wait_timeout(Duration::from_millis(1)),
        Err(ServeError::DeadlineExceeded)
    );
    gate.release();
    // The worker's late answer went nowhere; the engine is still healthy.
    assert_eq!(
        engine.score(fix.groups[1].clone()).expect("still serving"),
        fix.expected[1]
    );
}

/// Dropping a ticket before the response arrives abandons the request
/// without disturbing the engine.
#[test]
fn dropped_ticket_is_harmless() {
    let _guard = test_lock();
    let fix = fixture();
    let engine = Engine::new(
        Arc::clone(&fix.model),
        EngineConfig {
            workers: 1,
            queue_capacity: 64,
            max_batch: 16,
            coalesce: true,
            fail_point: None,
            stage_timing: true,
            ..EngineConfig::default()
        },
    );
    match engine.submit(fix.groups[0].clone()) {
        Submit::Accepted(t) => drop(t),
        _ => panic!("submit"),
    }
    assert_eq!(
        engine.score(fix.groups[1].clone()).expect("still serving"),
        fix.expected[1]
    );
}

/// `shutdown` racing in-flight submits: every concurrently submitted
/// request either resolves with scores (it was admitted before the close)
/// or is rejected at the edge — nothing hangs, nothing panics.
#[test]
fn shutdown_races_inflight_submits() {
    let _guard = test_lock();
    let fix = fixture();
    let engine = Engine::new(
        Arc::clone(&fix.model),
        EngineConfig {
            workers: 2,
            queue_capacity: 64,
            max_batch: 16,
            coalesce: true,
            fail_point: None,
            stage_timing: true,
            ..EngineConfig::default()
        },
    );
    let (scored, rejected) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|c| {
                let engine = &engine;
                s.spawn(move || {
                    let mut scored = 0u64;
                    let mut rejected = 0u64;
                    for i in 0..200 {
                        let gi = (c + i) % fix.groups.len();
                        match engine.submit(fix.groups[gi].clone()) {
                            Submit::Accepted(t) => match t.wait() {
                                Ok(scores) => {
                                    assert_eq!(scores, fix.expected[gi]);
                                    scored += 1;
                                }
                                // Teardown may drop a queued request; it
                                // must resolve, not hang.
                                Err(ServeError::Rejected) => rejected += 1,
                                Err(e) => panic!("unexpected error at shutdown: {e}"),
                            },
                            Submit::Rejected(_) => rejected += 1,
                            Submit::Invalid { error, .. } => panic!("fixture invalid: {error}"),
                        }
                    }
                    (scored, rejected)
                })
            })
            .collect();
        // Close admission while the clients are mid-flight.
        std::thread::sleep(Duration::from_millis(2));
        engine.shutdown();
        handles.into_iter().fold((0, 0), |(a, b), h| {
            let (s, r) = h.join().expect("client survived the race");
            (a + s, b + r)
        })
    });
    assert_eq!(scored + rejected, 4 * 200, "every submit resolved one way");
    assert!(rejected > 0, "shutdown closed the admission edge");
}

/// Invalid requests are refused at the admission edge with a typed error,
/// never reaching a worker (where they would panic an index lookup).
#[test]
fn invalid_input_is_refused_at_admission() {
    let _guard = test_lock();
    let fix = fixture();
    let engine = Engine::new(
        Arc::clone(&fix.model),
        EngineConfig {
            workers: 1,
            queue_capacity: 8,
            max_batch: 8,
            coalesce: true,
            fail_point: None,
            stage_timing: true,
            ..EngineConfig::default()
        },
    );
    let mut bad = fix.groups[0].clone();
    bad.user = od_hsg::UserId(u32::MAX);
    match engine.submit(bad) {
        Submit::Invalid { group, error } => {
            assert_eq!(group.user, od_hsg::UserId(u32::MAX), "group handed back");
            assert!(matches!(
                error,
                odnet_core::InvalidInput::UserOutOfRange { .. }
            ));
        }
        _ => panic!("out-of-range user must be refused"),
    }
    let mut bad = fix.groups[0].clone();
    bad.lt_days.push(0); // misaligned with lt_origins
    assert!(matches!(
        engine.score(bad),
        Err(ServeError::InvalidInput(
            odnet_core::InvalidInput::MisalignedSequence { .. }
        ))
    ));
    assert_eq!(engine.health().invalid, 2);
    assert_eq!(engine.stats().submitted, 0, "nothing invalid was queued");
    // No worker ever saw them; the engine still serves valid requests.
    assert_eq!(
        engine.score(fix.groups[0].clone()).expect("still serving"),
        fix.expected[0]
    );
}

/// The swap chaos headline: 8-thread load with three *distinct-content*
/// generations published mid-flight. Zero lost tickets, and every single
/// response is bit-identical to direct `score_group` on the artifact
/// version its stamp records — a response scored by epoch 2 matches
/// generation 2's oracle, never a blend.
#[test]
fn hot_swaps_under_load_keep_responses_version_consistent() {
    let _guard = test_lock();
    let fix = fixture();
    let engine = Engine::new(
        Arc::clone(&fix.model),
        EngineConfig {
            workers: 2,
            queue_capacity: 256,
            max_batch: 16,
            coalesce: true,
            fail_point: None,
            stage_timing: true,
            swap_grace: Duration::from_millis(50),
        },
    );
    // expected_by_epoch[e][gi]: epoch 0 is the construction generation.
    let mut expected_by_epoch: Vec<&Vec<Vec<(f32, f32)>>> = vec![&fix.expected];
    expected_by_epoch.extend(fix.alt_expected.iter());

    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 150;
    const TOTAL: usize = CLIENTS * PER_CLIENT;
    let completed = AtomicUsize::new(0);
    std::thread::scope(|s| {
        // Publisher: three swaps paced on completed-request marks, so each
        // generation serves a slice of the run.
        let completed = &completed;
        let engine = &engine;
        s.spawn(move || {
            for (i, m) in fix.alt_models.iter().enumerate() {
                let mark = (i + 1) * TOTAL / 5;
                while completed.load(Ordering::Relaxed) < mark {
                    std::thread::yield_now();
                }
                let v = engine.publish(Arc::clone(m)).expect("compatible publish");
                assert_eq!(v.epoch, i as u64 + 1, "publishes are monotone epochs");
            }
        });
        let expected_by_epoch = &expected_by_epoch;
        for c in 0..CLIENTS {
            s.spawn(move || {
                for i in 0..PER_CLIENT {
                    let gi = (c * PER_CLIENT + i) % fix.groups.len();
                    let mut group = fix.groups[gi].clone();
                    let response = loop {
                        match engine.submit(group) {
                            Submit::Accepted(t) => {
                                break t.wait_versioned().expect("no faults injected")
                            }
                            Submit::Rejected(back) => {
                                group = back;
                                std::thread::yield_now();
                            }
                            Submit::Invalid { error, .. } => {
                                panic!("fixture group failed validation: {error}")
                            }
                        }
                    };
                    let epoch = response.version.epoch as usize;
                    assert!(epoch < expected_by_epoch.len(), "unknown epoch {epoch}");
                    assert_eq!(
                        response.scores, expected_by_epoch[epoch][gi],
                        "response must match the generation its version stamp records"
                    );
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    // Scope join + expect above = every ticket resolved with scores.
    assert_eq!(
        completed.load(Ordering::Relaxed),
        TOTAL,
        "zero lost tickets"
    );
    let health = engine.health();
    assert_eq!(health.publishes, 3);
    assert_eq!(health.publish_rejected, 0);
    assert_eq!(health.artifact_epoch, 3);
    // The final generation owns the slot now.
    assert_eq!(
        engine.score(fix.groups[0].clone()).expect("still serving"),
        fix.alt_expected[2][0]
    );
}

/// An in-flight batch finishes on the artifact generation it started
/// with, even when a publish lands mid-batch; the next drain picks up the
/// new generation.
#[test]
fn inflight_batch_finishes_on_its_generation_across_a_publish() {
    let _guard = test_lock();
    let fix = fixture();
    let gate = Gate::new();
    let engine = Engine::new(
        Arc::clone(&fix.model),
        EngineConfig {
            workers: 1,
            queue_capacity: 64,
            max_batch: 16,
            coalesce: true,
            fail_point: Some(gate.fail_point()),
            stage_timing: true,
            ..EngineConfig::default()
        },
    );
    // A's batch drains (loading the epoch-0 slot) and parks at the gate...
    let ta = match engine.submit(fix.groups[0].clone()) {
        Submit::Accepted(t) => t,
        _ => panic!("submit A"),
    };
    gate.wait_entered();
    // ...a publish lands while A is mid-batch...
    let v = engine
        .publish(Arc::clone(&fix.alt_models[0]))
        .expect("compatible publish");
    assert_eq!(v.epoch, 1);
    // ...and B is queued behind the gate, to be drained post-publish.
    let tb = match engine.submit(fix.groups[1].clone()) {
        Submit::Accepted(t) => t,
        _ => panic!("submit B"),
    };
    gate.release();
    let ra = ta.wait_versioned().expect("A scored");
    assert_eq!(
        (ra.version.epoch, ra.scores),
        (0, fix.expected[0].clone()),
        "in-flight batch must finish on the generation it started with"
    );
    let rb = tb.wait_versioned().expect("B scored");
    assert_eq!(
        (rb.version.epoch, rb.scores),
        (1, fix.alt_expected[0][1].clone()),
        "the next drain must pick up the published generation"
    );
}

/// Retired generations are kept alive through the grace period (a batch
/// that loaded the old slot may still be scoring) and actually reclaimed
/// after it — verified with a `Weak` that must die once the grace elapses
/// and a drain runs the reaper.
#[test]
fn retired_generations_are_reclaimed_after_grace() {
    let _guard = test_lock();
    let fix = fixture();
    let grace = Duration::from_millis(20);
    let first = Arc::new((*fix.alt_models[0]).clone());
    let weak = Arc::downgrade(&first);
    let engine = Engine::new(
        first, // the engine now holds the only strong reference
        EngineConfig {
            workers: 1,
            queue_capacity: 64,
            max_batch: 16,
            coalesce: true,
            fail_point: None,
            stage_timing: true,
            swap_grace: grace,
        },
    );
    assert_eq!(
        engine.score(fix.groups[0].clone()).expect("scored"),
        fix.alt_expected[0][0]
    );
    engine
        .publish(Arc::clone(&fix.alt_models[1]))
        .expect("compatible publish");
    // No drain has run since the publish, so the retired generation is
    // still parked in the grace list — alive.
    assert_eq!(engine.health().retired_artifacts, 1);
    assert!(
        weak.upgrade().is_some(),
        "retired generation must survive its grace period"
    );
    std::thread::sleep(grace + Duration::from_millis(5));
    // The next drains run the reaper; the old artifact's memory must go.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        assert_eq!(
            engine.score(fix.groups[1].clone()).expect("still serving"),
            fix.alt_expected[1][1],
            "post-publish scores come from the new generation"
        );
        if weak.upgrade().is_none() && engine.health().retired_artifacts == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "retired artifact never reclaimed after grace"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Publishing into an engine that is tearing down (or already shut down)
/// must neither hang nor panic: the slot swap is independent of the
/// worker pool, so it simply succeeds and the next epoch is visible in
/// health even though nothing will serve it.
#[test]
fn publish_during_teardown_is_safe() {
    let _guard = test_lock();
    let fix = fixture();
    let engine = Engine::new(
        Arc::clone(&fix.model),
        EngineConfig {
            workers: 2,
            queue_capacity: 64,
            max_batch: 16,
            coalesce: true,
            fail_point: None,
            stage_timing: true,
            ..EngineConfig::default()
        },
    );
    // Publishes racing shutdown from another thread: both sides must
    // complete, every publish getting a distinct monotone epoch.
    std::thread::scope(|s| {
        let engine = &engine;
        s.spawn(move || {
            for m in &fix.alt_models {
                engine
                    .publish(Arc::clone(m))
                    .expect("publish must survive a concurrent shutdown");
            }
        });
        engine.shutdown();
    });
    let health = engine.health();
    assert_eq!(health.publishes, 3);
    assert_eq!(health.artifact_epoch, 3);
    // And one more after shutdown is fully done.
    let v = engine
        .publish(Arc::clone(&fix.alt_models[0]))
        .expect("publish to a shut-down engine is trivially fine");
    assert_eq!(v.epoch, 4);
}

/// A ticket left unscored at engine teardown (workerless engine) resolves
/// with `Rejected` instead of hanging the caller.
#[test]
fn teardown_resolves_unscored_tickets() {
    let _guard = test_lock();
    let fix = fixture();
    let t: Ticket;
    {
        let engine = Engine::new(
            Arc::clone(&fix.model),
            EngineConfig {
                workers: 0,
                queue_capacity: 8,
                max_batch: 8,
                coalesce: true,
                fail_point: None,
                stage_timing: true,
                ..EngineConfig::default()
            },
        );
        t = match engine.submit(fix.groups[0].clone()) {
            Submit::Accepted(t) => t,
            _ => panic!("submit"),
        };
    } // engine dropped with the request still queued
    assert_eq!(t.wait(), Err(ServeError::Rejected));
}

/// The network-path drain regression: a connection thread blocked on a
/// ticket while the engine shuts down must get an answer (`Rejected` →
/// 503), never hang — even when no worker will ever service the queue.
#[test]
fn drain_resolves_tickets_nobody_will_score() {
    let _guard = test_lock();
    let fix = fixture();
    let engine = Engine::new(
        Arc::clone(&fix.model),
        EngineConfig {
            workers: 0,
            queue_capacity: 8,
            max_batch: 8,
            coalesce: true,
            fail_point: None,
            stage_timing: true,
            ..EngineConfig::default()
        },
    );
    let t = match engine.submit(fix.groups[0].clone()) {
        Submit::Accepted(t) => t,
        _ => panic!("submit"),
    };
    // The "connection thread": parked in an unbounded wait on the ticket.
    let waiter = std::thread::spawn(move || t.wait());
    let begin = Instant::now();
    assert!(
        engine.drain(Duration::from_millis(50)),
        "an empty-handed pool settles once the queue is force-drained"
    );
    assert!(
        begin.elapsed() < Duration::from_secs(5),
        "drain must be bounded by its grace window"
    );
    assert_eq!(waiter.join().unwrap(), Err(ServeError::Rejected));
    let health = engine.health();
    assert_eq!(health.drain_rejected, 1);
    // Force-drained requests leave the accounting invariant reconciled.
    let stats = engine.stats();
    assert_eq!(
        stats.submitted,
        stats.completed + stats.expired + stats.panicked_requests + health.drain_rejected
    );
}

/// Drain with a stalled worker: the claimed batch cannot be answered
/// within the grace window (drain reports `false`), but everything queued
/// *behind* it is force-resolved promptly, and the stalled batch's own
/// ticket still resolves once the worker comes back.
#[test]
fn drain_force_rejects_behind_a_stalled_worker() {
    let _guard = test_lock();
    let fix = fixture();
    let gate = Gate::new();
    let engine = Engine::new(
        Arc::clone(&fix.model),
        EngineConfig {
            workers: 1,
            queue_capacity: 8,
            max_batch: 1,
            coalesce: true,
            fail_point: Some(gate.fail_point()),
            stage_timing: true,
            ..EngineConfig::default()
        },
    );
    let stalled = match engine.submit(fix.groups[0].clone()) {
        Submit::Accepted(t) => t,
        _ => panic!("submit stalled"),
    };
    gate.wait_entered(); // worker holds batch 0, parked at the gate
    let queued = match engine.submit(fix.groups[1].clone()) {
        Submit::Accepted(t) => t,
        _ => panic!("submit queued"),
    };
    let begin = Instant::now();
    assert!(
        !engine.drain(Duration::from_millis(50)),
        "a claimed batch past the grace window reports an unclean drain"
    );
    assert!(begin.elapsed() < Duration::from_secs(5));
    // The request behind the stalled batch was force-resolved, not hung.
    assert_eq!(queued.wait(), Err(ServeError::Rejected));
    assert_eq!(engine.health().drain_rejected, 1);
    // The stalled batch still resolves (scored, bit-exact) on release.
    gate.release();
    assert_eq!(
        stalled.wait().expect("stalled batch scores"),
        fix.expected[0]
    );
    let stats = engine.stats();
    assert_eq!(
        stats.submitted,
        stats.completed + stats.expired + stats.panicked_requests + engine.health().drain_rejected
    );
}
