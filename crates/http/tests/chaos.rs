//! Socket-level chaos for the HTTP tier: the suite drives a real
//! listener over loopback with hostile clients — half-open connections,
//! byte-at-a-time writers, mid-body disconnects, floods past the
//! connection cap, and injected engine panics under concurrent load —
//! and pins the tier's contract:
//!
//! - every request whose bytes fully arrive gets exactly one response,
//!   with failures *typed* (429/500/503/504), never a hang or a lost
//!   ticket;
//! - every `200` body is bit-exact with the in-process oracle
//!   ([`score_all`]) — the wire adds zero numeric drift;
//! - graceful drain answers all in-flight requests before the listener
//!   closes.
//!
//! The minimal blocking client lives in `od_serve::loadgen` (shared with
//! the throughput bench's HTTP experiment), so the same code path that
//! measures the tier also verifies it.

use od_hsg::{HsgBuilder, UserId};
use od_http::{Featurizer, Server, ServerConfig};
use od_retrieval::{RetrievalConfig, ScoredPair, Tier};
use od_serve::loadgen::{http_request, read_http_response, HttpResponse};
use od_serve::{score_all, EngineConfig, FailPoint, FailSite, Funnel, FunnelConfig};
use odnet_core::{FeatureExtractor, FrozenOdNet, GroupInput, OdNetModel, OdnetConfig, Variant};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

struct Fixture {
    model: Arc<FrozenOdNet>,
    templates: Vec<GroupInput>,
    /// Direct single-threaded scores of every template — the oracle.
    oracle: Vec<Vec<(f32, f32)>>,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let ds = od_data::FliggyDataset::generate(od_data::FliggyConfig::tiny());
        let coords = ds.world.cities.iter().map(|c| c.coords).collect();
        let mut b = HsgBuilder::new(ds.world.num_users(), coords);
        for it in ds.hsg_interactions() {
            b.add_interaction(it);
        }
        let model = Arc::new(
            OdNetModel::new(
                Variant::Odnet,
                OdnetConfig::tiny(),
                ds.world.num_users(),
                ds.world.num_cities(),
                Some(b.build()),
            )
            .freeze(),
        );
        let fx = FeatureExtractor::new(6, 4);
        let templates: Vec<GroupInput> = fx
            .groups_from_samples(&ds, &ds.train)
            .into_iter()
            .take(8)
            .collect();
        assert!(templates.len() >= 2, "fixture needs user templates");
        let oracle = score_all(&model, &templates);
        Fixture {
            model,
            templates,
            oracle,
        }
    })
}

/// The caller-side featurizer the server is started with: candidates
/// from the retrieval stage grafted onto the user's context template.
fn featurizer() -> Featurizer {
    let fix = fixture();
    Arc::new(move |user: UserId, pairs: &[ScoredPair]| {
        let template = fix
            .templates
            .iter()
            .find(|t| t.user == user)
            .unwrap_or(&fix.templates[0]);
        let donor = template.candidates[0];
        let mut g = template.clone();
        g.user = user;
        g.candidates = pairs
            .iter()
            .map(|p| {
                let mut c = donor;
                c.origin = p.origin;
                c.dest = p.dest;
                c.label_o = 0.0;
                c.label_d = 0.0;
                c
            })
            .collect();
        g
    })
}

fn funnel_with(cfg: EngineConfig) -> Arc<Funnel> {
    Arc::new(Funnel::new(
        Arc::clone(&fixture().model),
        0xF00D,
        cfg,
        FunnelConfig {
            retrieval: RetrievalConfig::default(),
            tier: Tier::Exact,
            recall_probe_every: 1,
        },
    ))
}

/// A server over `n` one-worker shards with the suite's fast timeouts.
fn start_server(n_shards: usize, cfg: ServerConfig) -> (Server, Vec<Arc<Funnel>>) {
    let shards: Vec<Arc<Funnel>> = (0..n_shards)
        .map(|_| {
            funnel_with(EngineConfig {
                workers: 1,
                ..EngineConfig::default()
            })
        })
        .collect();
    let server = Server::start(shards.clone(), featurizer(), cfg).expect("bind http server");
    (server, shards)
}

fn connect(server: &Server) -> TcpStream {
    TcpStream::connect(server.addr()).expect("connect to server")
}

fn score_body(i: usize) -> Vec<u8> {
    serde_json::to_string(&fixture().templates[i])
        .expect("group serializes")
        .into_bytes()
}

fn post_score(conn: &mut TcpStream, i: usize) -> HttpResponse {
    http_request(
        conn,
        "POST",
        "/v1/score",
        &[("Content-Type", "application/json")],
        Some(&score_body(i)),
    )
    .expect("score request answered")
}

/// Assert a 200 score body is bit-for-bit the oracle's scores.
fn assert_bit_exact(resp: &HttpResponse, i: usize) {
    assert_eq!(
        resp.status,
        200,
        "body: {:?}",
        String::from_utf8_lossy(&resp.body)
    );
    let wire: od_http::wire::ScoreResponse =
        serde_json::from_str(std::str::from_utf8(&resp.body).expect("score response is utf-8"))
            .expect("score response decodes");
    let expect = &fixture().oracle[i];
    assert_eq!(wire.scores.len(), expect.len());
    for (got, want) in wire.scores.iter().zip(expect) {
        assert_eq!(
            got.0.to_bits(),
            want.0.to_bits(),
            "origin score drifted on the wire"
        );
        assert_eq!(
            got.1.to_bits(),
            want.1.to_bits(),
            "dest score drifted on the wire"
        );
    }
}

// ---- End-to-end happy path ---------------------------------------------

#[test]
fn one_keepalive_connection_serves_every_route_bit_exact() {
    let fix = fixture();
    let (server, _shards) = start_server(2, ServerConfig::default());
    let mut conn = connect(&server);

    // Every template group over the wire, all on one keep-alive
    // connection, every score bit-exact with the direct oracle.
    for i in 0..fix.templates.len() {
        let resp = post_score(&mut conn, i);
        assert_bit_exact(&resp, i);
        assert_eq!(resp.header("x-artifact-epoch"), Some("0"));
        assert!(resp.header("x-artifact-checksum").is_some());
    }

    // The full funnel on the same connection: ranked pairs carry both
    // version stamps and the rank key is the artifact's serving blend.
    let user = fix.templates[0].user.0 as u64;
    let ask = format!("{{\"user\":{user},\"k\":4}}");
    let resp = http_request(
        &mut conn,
        "POST",
        "/v1/recommend",
        &[],
        Some(ask.as_bytes()),
    )
    .expect("recommend answered");
    assert_eq!(
        resp.status,
        200,
        "{:?}",
        String::from_utf8_lossy(&resp.body)
    );
    let rec: od_http::wire::RecommendResponse =
        serde_json::from_str(std::str::from_utf8(&resp.body).expect("recommend response is utf-8"))
            .expect("recommend response decodes");
    assert_eq!(rec.pairs.len(), 4);
    assert_eq!(rec.retrieved_by.epoch, 0);
    assert_eq!(rec.ranked_by.epoch, 0);
    for p in &rec.pairs {
        assert_ne!(p.origin, p.dest);
        assert_eq!(
            p.rank_score.to_bits(),
            fix.model.serving_score(p.p_origin, p.p_dest).to_bits()
        );
    }

    // Readiness and exposition ride the same connection too.
    let health = http_request(&mut conn, "GET", "/healthz", &[], None).expect("healthz");
    assert_eq!(health.status, 200);
    assert_eq!(health.body, b"ok\n");
    let metrics = http_request(&mut conn, "GET", "/metrics", &[], None).expect("metrics");
    assert_eq!(metrics.status, 200);
    let text = String::from_utf8(metrics.body).expect("exposition is utf-8");
    for series in [
        "od_http_requests_total",
        "od_http_responses_total",
        "od_http_active_connections",
        "od_http_e2e_ns",
    ] {
        assert!(text.contains(series), "{series} missing from /metrics");
    }

    let report = server.shutdown();
    assert!(report.clean, "fault-free drain must settle cleanly");
    assert_eq!(report.drain_rejected, 0);
}

// ---- Typed rejects over the wire ---------------------------------------

#[test]
fn malformed_requests_get_typed_statuses_not_hangs() {
    let (server, _shards) = start_server(
        1,
        ServerConfig {
            max_body_bytes: 2 * 1024,
            ..ServerConfig::default()
        },
    );

    // Routing errors keep the connection alive.
    let mut conn = connect(&server);
    let resp = http_request(&mut conn, "GET", "/nope", &[], None).expect("404 answered");
    assert_eq!(resp.status, 404);
    let resp = http_request(&mut conn, "DELETE", "/v1/score", &[], None).expect("405 answered");
    assert_eq!(resp.status, 405);
    assert_eq!(resp.header("allow"), Some("POST"));
    let resp = http_request(&mut conn, "POST", "/healthz", &[], None).expect("405 answered");
    assert_eq!(resp.header("allow"), Some("GET"));

    // Semantic garbage in a well-formed envelope: 400, still keep-alive.
    let resp =
        http_request(&mut conn, "POST", "/v1/score", &[], Some(b"not json")).expect("400 answered");
    assert_eq!(resp.status, 400);
    let resp = http_request(
        &mut conn,
        "POST",
        "/v1/score",
        &[],
        Some(&[0xff, 0xfe, 0x80]),
    )
    .expect("utf-8 reject answered");
    assert_eq!(resp.status, 400);
    let resp = http_request(
        &mut conn,
        "POST",
        "/v1/recommend",
        &[],
        Some(b"{\"user\":1,\"k\":0}"),
    )
    .expect("k=0 answered");
    assert_eq!(resp.status, 400);
    let out_of_universe = format!(
        "{{\"user\":{},\"k\":3}}",
        fixture().model.num_users() as u64 + 7
    );
    let resp = http_request(
        &mut conn,
        "POST",
        "/v1/recommend",
        &[],
        Some(out_of_universe.as_bytes()),
    )
    .expect("unknown user answered");
    assert_eq!(
        resp.status, 400,
        "out-of-universe user must 400, not panic the retriever"
    );

    // Wire-level violations answer typed and close. Fresh connection per
    // case since the server hangs up after each.
    let cases: &[(&[u8], u16)] = &[
        (b"GET /healthz HTTP/2.0\r\n\r\n", 505),
        (b"GET\r\n\r\n", 400),
        (b"GET /healthz HTTP/1.1\r\nHost: a\nb: c\r\n\r\n", 400),
        (
            b"POST /v1/score HTTP/1.1\r\ncontent-length: 4\r\ntransfer-encoding: chunked\r\n\r\n",
            400,
        ),
        (
            b"POST /v1/score HTTP/1.1\r\ncontent-length: 999999999\r\n\r\n",
            413,
        ),
    ];
    for (bytes, want) in cases {
        let mut conn = connect(&server);
        conn.write_all(bytes).expect("write raw request");
        conn.flush().expect("flush raw request");
        let resp = read_http_response(&mut conn).expect("typed reject answered");
        assert_eq!(
            resp.status,
            *want,
            "for {:?}",
            String::from_utf8_lossy(bytes)
        );
        // The server closes after a parse reject: the next read is EOF.
        let mut rest = Vec::new();
        let _ = conn.read_to_end(&mut rest);
        assert!(rest.is_empty(), "no stray bytes after a closing reject");
    }

    // A single oversized header line: 431 and close.
    let mut conn = connect(&server);
    let mut big = b"GET /healthz HTTP/1.1\r\nx-padding: ".to_vec();
    big.extend(std::iter::repeat_n(b'a', 10 * 1024));
    big.extend_from_slice(b"\r\n\r\n");
    conn.write_all(&big).expect("write oversized head");
    let resp = read_http_response(&mut conn).expect("431 answered");
    assert_eq!(resp.status, 431);

    server.shutdown();
}

// ---- Deadlines and backpressure ----------------------------------------

#[test]
fn deadline_propagates_to_504_and_full_queue_to_429() {
    // No workers and a one-slot queue: the first request parks, the
    // second is refused at admission.
    let shard = funnel_with(EngineConfig {
        workers: 0,
        queue_capacity: 1,
        ..EngineConfig::default()
    });
    let server = Server::start(
        vec![shard],
        featurizer(),
        ServerConfig {
            drain_grace: Duration::from_millis(200),
            ..ServerConfig::default()
        },
    )
    .expect("bind http server");

    // X-Deadline-Ms rides into the engine: nobody will ever score this,
    // so the deadline is the only thing that unparks the connection.
    let mut conn = connect(&server);
    let begin = Instant::now();
    let resp = http_request(
        &mut conn,
        "POST",
        "/v1/score",
        &[("X-Deadline-Ms", "50")],
        Some(&score_body(0)),
    )
    .expect("504 answered");
    assert_eq!(resp.status, 504);
    assert!(
        begin.elapsed() < Duration::from_secs(5),
        "the deadline, not a socket timeout, must resolve the wait"
    );

    // The expired request still occupies the one queue slot: admission
    // backpressure is a retryable 429 with Retry-After.
    let resp = post_score(&mut conn, 1);
    assert_eq!(resp.status, 429);
    assert_eq!(resp.header("retry-after"), Some("1"));

    // Drain force-resolves the parked ticket within the grace window and
    // reports it — nothing hangs, the accounting reconciles.
    let report = server.shutdown();
    assert!(
        report.clean,
        "force-drain must settle the zero-worker shard"
    );
    assert_eq!(report.drain_rejected, 1);
}

#[test]
fn connections_past_the_cap_get_an_immediate_edge_503() {
    let (server, _shards) = start_server(
        1,
        ServerConfig {
            max_connections: 1,
            conn_workers: 1,
            ..ServerConfig::default()
        },
    );

    // Occupy the single admitted slot (and prove it is admitted).
    let mut first = connect(&server);
    let resp = http_request(&mut first, "GET", "/healthz", &[], None).expect("first admitted");
    assert_eq!(resp.status, 200);

    // Every connection past the cap is answered 503 by the *acceptor* —
    // no worker is free, so only the edge could have written this.
    for _ in 0..3 {
        let mut flood = connect(&server);
        let resp = read_http_response(&mut flood).expect("edge 503 answered");
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("retry-after"), Some("1"));
    }

    // The admitted connection is unaffected by the flood.
    let resp = post_score(&mut first, 0);
    assert_bit_exact(&resp, 0);
    server.shutdown();
}

// ---- Hostile clients ----------------------------------------------------

#[test]
fn slow_loris_gets_408_and_half_open_gets_silent_close() {
    let (server, _shards) = start_server(
        1,
        ServerConfig {
            header_timeout: Duration::from_millis(300),
            read_slice: Duration::from_millis(20),
            ..ServerConfig::default()
        },
    );

    // A writer that sends a partial request line and stalls: typed 408.
    let mut loris = connect(&server);
    loris.write_all(b"GET /heal").expect("partial write");
    loris.flush().expect("flush partial");
    let resp = read_http_response(&mut loris).expect("408 answered");
    assert_eq!(resp.status, 408);

    // A half-open connection that never sends a byte: closed silently —
    // EOF, not a status line (there is no request to answer).
    let mut half_open = connect(&server);
    half_open
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("set client read timeout");
    let mut buf = Vec::new();
    let n = half_open
        .read_to_end(&mut buf)
        .expect("server closes idle conn");
    assert_eq!(n, 0, "idle half-open close must not fabricate a response");

    // The server is fully healthy afterwards.
    let mut conn = connect(&server);
    let resp = post_score(&mut conn, 0);
    assert_bit_exact(&resp, 0);
    server.shutdown();
}

#[test]
fn byte_at_a_time_writer_is_parsed_and_scored_exactly() {
    let (server, _shards) = start_server(1, ServerConfig::default());
    let body = score_body(0);
    let head = format!(
        "POST /v1/score HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    let mut wire = head.into_bytes();
    wire.extend_from_slice(&body);

    let mut conn = connect(&server);
    conn.set_nodelay(true).expect("nodelay");
    for b in &wire {
        conn.write_all(std::slice::from_ref(b))
            .expect("single-byte write");
        conn.flush().expect("flush single byte");
    }
    let resp = read_http_response(&mut conn).expect("dripped request answered");
    assert_bit_exact(&resp, 0);
    server.shutdown();
}

#[test]
fn mid_body_disconnect_leaves_the_server_serving() {
    let (server, _shards) = start_server(
        1,
        ServerConfig {
            body_timeout: Duration::from_millis(300),
            read_slice: Duration::from_millis(20),
            ..ServerConfig::default()
        },
    );

    // Declare 100 body bytes, send 10, vanish.
    {
        let mut ghost = connect(&server);
        ghost
            .write_all(b"POST /v1/score HTTP/1.1\r\nContent-Length: 100\r\n\r\n0123456789")
            .expect("partial body write");
        ghost.flush().expect("flush partial body");
        // Dropping the stream sends FIN mid-body.
    }
    // And one that declares a body then stalls forever (body-phase loris).
    let mut stall = connect(&server);
    stall
        .write_all(b"POST /v1/score HTTP/1.1\r\nContent-Length: 100\r\n\r\nabc")
        .expect("stalling body write");
    stall.flush().expect("flush stalling body");

    // Neither hostile client wedges a worker: fresh requests keep
    // scoring bit-exact.
    let mut conn = connect(&server);
    for i in 0..3 {
        let resp = post_score(&mut conn, i % fixture().templates.len());
        assert_bit_exact(&resp, i % fixture().templates.len());
    }
    // The body-phase loris got its typed 408 within the body window.
    let resp = read_http_response(&mut stall).expect("body-phase 408 answered");
    assert_eq!(resp.status, 408);
    server.shutdown();
}

#[test]
fn keepalive_reuses_reset_the_per_request_deadline() {
    let (server, _shards) = start_server(
        1,
        ServerConfig {
            header_timeout: Duration::from_millis(500),
            read_slice: Duration::from_millis(20),
            ..ServerConfig::default()
        },
    );
    let mut conn = connect(&server);

    // Three requests, each after an idle gap of ~80% of the header
    // window. Cumulative elapsed time far exceeds the window, so an
    // implementation that armed one deadline per *connection* instead of
    // per *request* would have hung up mid-sequence.
    for round in 0..3 {
        std::thread::sleep(Duration::from_millis(400));
        let resp = http_request(&mut conn, "GET", "/healthz", &[], None)
            .unwrap_or_else(|e| panic!("keep-alive round {round} not answered: {e}"));
        assert_eq!(resp.status, 200);
    }
    server.shutdown();
}

// ---- The headline: concurrent load + injected faults --------------------

/// A fail point that panics when draining the batches with the given
/// (per-engine) sequence numbers.
fn panic_at_batches(seqs: &'static [u64]) -> FailPoint {
    Arc::new(move |site, seq| {
        if site == FailSite::BeforeBatch && seqs.contains(&seq) {
            panic!("injected chaos fault at batch {seq}");
        }
    })
}

#[test]
fn no_request_is_lost_under_load_with_injected_panics_and_hostile_peers() {
    let fix = fixture();
    // Two shards, each rigged to panic its worker at batches 1 and 3;
    // the supervisor respawns, the poisoned batches answer typed 500s.
    let shards: Vec<Arc<Funnel>> = (0..2)
        .map(|_| {
            funnel_with(EngineConfig {
                workers: 2,
                fail_point: Some(panic_at_batches(&[1, 3])),
                ..EngineConfig::default()
            })
        })
        .collect();
    let server = Server::start(
        shards.clone(),
        featurizer(),
        ServerConfig {
            conn_workers: 8,
            max_connections: 32,
            ..ServerConfig::default()
        },
    )
    .expect("bind http server");
    let addr = server.addr();

    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 40;
    let answered_200 = AtomicU64::new(0);
    let answered_500 = AtomicU64::new(0);
    let retries_429 = AtomicU64::new(0);
    let mismatches = AtomicU64::new(0);
    let unexpected = AtomicU64::new(0);
    let stop_hostile = AtomicBool::new(false);

    std::thread::scope(|s| {
        // Hostile peers stirring the pot while the load runs: slow-loris
        // partial writers and mid-body disconnectors on their own
        // connections. Edge 503s (cap racing) are fine; what matters is
        // they never affect the well-behaved clients below.
        s.spawn(|| {
            while !stop_hostile.load(Ordering::Relaxed) {
                if let Ok(mut c) = TcpStream::connect(addr) {
                    let _ = c.write_all(b"POST /v1/score HTTP/1.1\r\nContent-Le");
                    let _ = c.flush();
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        s.spawn(|| {
            while !stop_hostile.load(Ordering::Relaxed) {
                if let Ok(mut c) = TcpStream::connect(addr) {
                    let _ =
                        c.write_all(b"POST /v1/score HTTP/1.1\r\nContent-Length: 64\r\n\r\nhalf");
                    let _ = c.flush();
                    drop(c); // FIN mid-body
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        });

        let clients: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let answered_200 = &answered_200;
                let answered_500 = &answered_500;
                let retries_429 = &retries_429;
                let mismatches = &mismatches;
                let unexpected = &unexpected;
                s.spawn(move || {
                    let mut conn = TcpStream::connect(addr).expect("client connects");
                    for n in 0..PER_CLIENT {
                        let i = (c + n) % fix.templates.len();
                        loop {
                            let resp = http_request(
                                &mut conn,
                                "POST",
                                "/v1/score",
                                &[],
                                Some(&score_body(i)),
                            )
                            .expect("closed-loop client must always get a response");
                            match resp.status {
                                200 => {
                                    let wire: od_http::wire::ScoreResponse = serde_json::from_str(
                                        std::str::from_utf8(&resp.body).expect("200 body is utf-8"),
                                    )
                                    .expect("200 body decodes");
                                    let exact = wire.scores.len() == fix.oracle[i].len()
                                        && wire.scores.iter().zip(&fix.oracle[i]).all(|(g, w)| {
                                            g.0.to_bits() == w.0.to_bits()
                                                && g.1.to_bits() == w.1.to_bits()
                                        });
                                    if !exact {
                                        mismatches.fetch_add(1, Ordering::Relaxed);
                                    }
                                    answered_200.fetch_add(1, Ordering::Relaxed);
                                    break;
                                }
                                500 => {
                                    // A poisoned batch: typed, final, the
                                    // connection stays usable.
                                    answered_500.fetch_add(1, Ordering::Relaxed);
                                    break;
                                }
                                429 => {
                                    retries_429.fetch_add(1, Ordering::Relaxed);
                                    std::thread::yield_now();
                                }
                                _ => {
                                    unexpected.fetch_add(1, Ordering::Relaxed);
                                    break;
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        for c in clients {
            c.join().expect("load client must not panic");
        }
        stop_hostile.store(true, Ordering::Relaxed);
    });

    // Zero lost responses: every submitted request resolved, as 200 or a
    // typed failure — and nothing else.
    let total = answered_200.load(Ordering::Relaxed) + answered_500.load(Ordering::Relaxed);
    assert_eq!(
        total,
        (CLIENTS * PER_CLIENT) as u64,
        "requests went unanswered"
    );
    assert_eq!(
        unexpected.load(Ordering::Relaxed),
        0,
        "untyped response observed"
    );
    assert_eq!(
        mismatches.load(Ordering::Relaxed),
        0,
        "wire scores drifted from oracle"
    );

    // The faults actually fired, and the wire's 500s reconcile exactly
    // with the engines' own accounting of poisoned requests.
    let mut worker_panics = 0;
    let mut panicked_requests = 0;
    for shard in &shards {
        let h = shard.engine().health();
        worker_panics += h.worker_panics;
        panicked_requests += h.panicked_requests;
        assert_eq!(
            h.live_workers, h.configured_workers,
            "supervisor must have healed every injected panic"
        );
    }
    assert!(worker_panics >= 1, "the injected fail points never fired");
    assert_eq!(
        answered_500.load(Ordering::Relaxed),
        panicked_requests,
        "every poisoned request must surface as exactly one 500"
    );

    let report = server.shutdown();
    assert!(report.clean, "post-load drain must settle");
    assert_eq!(report.drain_rejected, 0);
}

// ---- Graceful drain ------------------------------------------------------

/// A fail point that blocks batch 0 at `BeforeBatch` until released,
/// signalling entry.
struct Gate {
    entered: AtomicBool,
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Arc<Gate> {
        Arc::new(Gate {
            entered: AtomicBool::new(false),
            open: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    fn fail_point(self: &Arc<Gate>) -> FailPoint {
        let gate = Arc::clone(self);
        Arc::new(move |site, seq| {
            if site == FailSite::BeforeBatch && seq == 0 {
                gate.entered.store(true, Ordering::SeqCst);
                let mut open = gate.open.lock().unwrap();
                while !*open {
                    open = gate.cv.wait(open).unwrap();
                }
            }
        })
    }

    fn wait_entered(&self) {
        let start = Instant::now();
        while !self.entered.load(Ordering::SeqCst) {
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "worker never drained batch 0"
            );
            std::thread::yield_now();
        }
    }

    fn release(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

#[test]
fn graceful_drain_answers_in_flight_requests_before_the_listener_closes() {
    let gate = Gate::new();
    let shard = funnel_with(EngineConfig {
        workers: 1,
        max_batch: 1,
        fail_point: Some(gate.fail_point()),
        ..EngineConfig::default()
    });
    let server = Server::start(vec![shard], featurizer(), ServerConfig::default())
        .expect("bind http server");
    let addr = server.addr();

    // An in-flight request: the engine worker is holding its batch at
    // the gate, the connection thread is parked on the ticket.
    let in_flight = std::thread::spawn(move || {
        let mut conn = TcpStream::connect(addr).expect("in-flight client connects");
        post_score(&mut conn, 0)
    });
    gate.wait_entered();

    // Begin the drain while that request is mid-batch. shutdown() blocks
    // until every in-flight response is written, so it runs on its own
    // thread.
    let drainer = std::thread::spawn(move || server.shutdown());

    // Give the acceptor a moment to observe the flag and exit; from then
    // on new connections are refused outright (or answered 503 if they
    // win the race with the acceptor's last accept).
    let refused_deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match TcpStream::connect(addr) {
            Err(_) => break, // listener closed: the drain stopped accepting
            Ok(mut c) => {
                match read_http_response(&mut c) {
                    Ok(resp) => assert_eq!(resp.status, 503, "mid-drain accept must be NOT-READY"),
                    Err(_) => break, // accepted by the OS backlog, never served: closed
                }
            }
        }
        assert!(
            Instant::now() < refused_deadline,
            "drain never stopped accepting connections"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // The gated batch is still unanswered; release it. The drain must
    // deliver the full response before the server finishes closing.
    gate.release();
    let resp = in_flight.join().expect("in-flight client must not panic");
    assert_bit_exact(&resp, 0);

    let report = drainer.join().expect("shutdown must not panic");
    assert!(report.clean, "in-flight work resolved: the drain is clean");
    assert_eq!(report.drain_rejected, 0);
}
