//! Fuzz-style table tests for the strict HTTP/1.1 parser: every
//! malformed input maps to its typed reject (and the status the server
//! will write — 400/413/431/505), and nothing panics. The happy paths
//! (content-length, chunked, pipelining, keep-alive defaults) are pinned
//! alongside so strictness never curdles into refusing legal traffic.

use od_http::{parse_request, ConnReader, Limits, ParseError, ParsedRequest, Phase};
use std::sync::atomic::AtomicBool;
use std::time::{Duration, Instant};

const LIMITS: Limits = Limits {
    max_header_bytes: 1024,
    max_body_bytes: 4096,
};

/// Parse one request out of a fixed byte buffer (EOF after the bytes).
fn parse_bytes(input: &[u8]) -> Result<ParsedRequest, ParseError> {
    let mut reader = ConnReader::new(input);
    let abort = AtomicBool::new(false);
    parse_request(
        &mut reader,
        &LIMITS,
        Duration::from_secs(2),
        Duration::from_secs(2),
        &abort,
    )
}

#[test]
fn minimal_get_parses() {
    let req = parse_bytes(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").expect("valid GET");
    assert_eq!(req.method, "GET");
    assert_eq!(req.path, "/healthz");
    assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    assert!(req.body.is_empty());
    assert_eq!(req.deadline_ms, None);
}

#[test]
fn content_length_body_parses() {
    let req = parse_bytes(
        b"POST /v1/score HTTP/1.1\r\nContent-Length: 5\r\nX-Deadline-Ms: 250\r\n\r\nhello",
    )
    .expect("valid POST");
    assert_eq!(req.body, b"hello");
    assert_eq!(req.deadline_ms, Some(250));
}

#[test]
fn chunked_body_is_reassembled() {
    let req = parse_bytes(
        b"POST /v1/score HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nwiki\r\n5\r\npedia\r\n0\r\n\r\n",
    )
    .expect("valid chunked POST");
    assert_eq!(req.body, b"wikipedia");
}

#[test]
fn connection_semantics_follow_the_version() {
    let req = parse_bytes(b"GET / HTTP/1.0\r\n\r\n").expect("1.0");
    assert!(!req.keep_alive, "HTTP/1.0 defaults to close");
    let req = parse_bytes(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").expect("1.0 ka");
    assert!(req.keep_alive);
    let req = parse_bytes(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").expect("1.1 close");
    assert!(!req.keep_alive);
}

#[test]
fn pipelined_requests_share_the_reader() {
    let wire = b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi";
    let mut reader = ConnReader::new(&wire[..]);
    let abort = AtomicBool::new(false);
    let mut next = || {
        parse_request(
            &mut reader,
            &LIMITS,
            Duration::from_secs(2),
            Duration::from_secs(2),
            &abort,
        )
    };
    assert_eq!(next().expect("first").path, "/a");
    let second = next().expect("second pipelined request");
    assert_eq!(second.path, "/b");
    assert_eq!(second.body, b"hi");
    assert_eq!(next().unwrap_err(), ParseError::IdleClose);
}

#[test]
fn empty_input_is_a_clean_idle_close() {
    let e = parse_bytes(b"").unwrap_err();
    assert_eq!(e, ParseError::IdleClose);
    assert_eq!(e.status(), None, "nothing arrived, nothing to answer");
}

/// The malformed-input table: every row must produce exactly the typed
/// reject named — and, transitively, never a panic (a panic anywhere in
/// here fails the test binary).
#[test]
fn malformed_inputs_map_to_typed_rejects() {
    let table: &[(&str, &[u8], u16)] = &[
        ("truncated request line", b"GET /v1/sco", 400),
        (
            "truncated mid-headers",
            b"GET / HTTP/1.1\r\nHost: x\r\nAccep",
            400,
        ),
        (
            "truncated mid-body",
            b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc",
            400,
        ),
        ("missing version", b"GET /\r\n\r\n", 400),
        (
            "extra request-line token",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            400,
        ),
        ("lowercase method", b"get / HTTP/1.1\r\n\r\n", 400),
        ("empty method", b" / HTTP/1.1\r\n\r\n", 400),
        (
            "target not origin-form",
            b"GET example.com HTTP/1.1\r\n\r\n",
            400,
        ),
        (
            "non-utf8 byte in target",
            b"GET /\xff\xfe HTTP/1.1\r\n\r\n",
            400,
        ),
        (
            "space smuggled into target",
            b"GET /a b HTTP/1.1\r\n\r\n",
            400,
        ),
        ("bare-lf line endings", b"GET / HTTP/1.1\nHost: x\n\n", 400),
        (
            "header without colon",
            b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
            400,
        ),
        (
            "illegal header name",
            b"GET / HTTP/1.1\r\nbad name: v\r\n\r\n",
            400,
        ),
        (
            "non-utf8 header value",
            b"GET / HTTP/1.1\r\nX-H: \xff\xfe\r\n\r\n",
            400,
        ),
        (
            "non-numeric content-length",
            b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n",
            400,
        ),
        (
            "duplicate content-length",
            b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nhi",
            400,
        ),
        (
            "content-length plus transfer-encoding (smuggling shape)",
            b"POST / HTTP/1.1\r\nContent-Length: 2\r\nTransfer-Encoding: chunked\r\n\r\n",
            400,
        ),
        (
            "unsupported transfer coding",
            b"POST / HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n",
            400,
        ),
        (
            "non-hex chunk size",
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\nhi\r\n0\r\n\r\n",
            400,
        ),
        (
            "chunk extension rejected",
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n2;ext=1\r\nhi\r\n0\r\n\r\n",
            400,
        ),
        (
            "chunk data not crlf-terminated",
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n2\r\nhiXX0\r\n\r\n",
            400,
        ),
        (
            "trailers rejected",
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n2\r\nhi\r\n0\r\nX-T: v\r\n\r\n",
            400,
        ),
        ("unsupported version", b"GET / HTTP/2.0\r\n\r\n", 505),
        ("nonsense version", b"GET / HTTP/x\r\n\r\n", 505),
        (
            "non-numeric x-deadline-ms",
            b"GET / HTTP/1.1\r\nX-Deadline-Ms: soon\r\n\r\n",
            400,
        ),
    ];
    for (what, wire, want_status) in table {
        let err = parse_bytes(wire).unwrap_err();
        assert_eq!(
            err.status(),
            Some(*want_status),
            "{what}: got {err:?}, wanted status {want_status}"
        );
    }
}

#[test]
fn oversized_headers_are_431() {
    let mut wire = b"GET / HTTP/1.1\r\nX-Big: ".to_vec();
    wire.extend(std::iter::repeat_n(b'a', 2 * LIMITS.max_header_bytes));
    wire.extend_from_slice(b"\r\n\r\n");
    let err = parse_bytes(&wire).unwrap_err();
    assert_eq!(err, ParseError::HeadersTooLarge);
    assert_eq!(err.status(), Some(431));
}

#[test]
fn oversized_declared_body_is_413_before_reading_it() {
    let wire = format!(
        "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        LIMITS.max_body_bytes + 1
    );
    let err = parse_bytes(wire.as_bytes()).unwrap_err();
    assert_eq!(err, ParseError::BodyTooLarge);
    assert_eq!(err.status(), Some(413));
}

#[test]
fn oversized_chunked_body_is_413_mid_stream() {
    // Many small chunks whose total crosses the cap: the declared sizes
    // are each innocent, so the parser must enforce the running total.
    let mut wire = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
    let chunk = [b'a'; 256];
    for _ in 0..(LIMITS.max_body_bytes / 256 + 2) {
        wire.extend_from_slice(b"100\r\n");
        wire.extend_from_slice(&chunk);
        wire.extend_from_slice(b"\r\n");
    }
    wire.extend_from_slice(b"0\r\n\r\n");
    let err = parse_bytes(&wire).unwrap_err();
    assert_eq!(err, ParseError::BodyTooLarge);
}

/// A reader that yields its script byte-at-a-time with a `WouldBlock`
/// between every byte — the in-process model of a slow-loris client.
struct Dripper<'a> {
    script: &'a [u8],
    at: usize,
    ready: bool,
}

impl std::io::Read for Dripper<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if !self.ready {
            self.ready = true;
            return Err(std::io::ErrorKind::WouldBlock.into());
        }
        self.ready = false;
        if self.at >= self.script.len() {
            // Stalled forever: nothing more will ever arrive.
            return Err(std::io::ErrorKind::WouldBlock.into());
        }
        buf[0] = self.script[self.at];
        self.at += 1;
        Ok(1)
    }
}

#[test]
fn byte_at_a_time_writer_still_parses() {
    let wire = b"POST /v1/score HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
    let mut reader = ConnReader::new(Dripper {
        script: wire,
        at: 0,
        ready: false,
    });
    let abort = AtomicBool::new(false);
    let req = parse_request(
        &mut reader,
        &LIMITS,
        Duration::from_secs(5),
        Duration::from_secs(5),
        &abort,
    )
    .expect("a slow but complete request parses");
    assert_eq!(req.body, b"hello");
}

#[test]
fn slow_loris_times_out_in_the_header_phase() {
    // Partial request line, then silence: the header window must end the
    // wait with a typed mid-request timeout (→ 408), not hang.
    let mut reader = ConnReader::new(Dripper {
        script: b"GET /heal",
        at: 0,
        ready: false,
    });
    let abort = AtomicBool::new(false);
    let begin = Instant::now();
    let err = parse_request(
        &mut reader,
        &LIMITS,
        Duration::from_millis(50),
        Duration::from_millis(50),
        &abort,
    )
    .unwrap_err();
    assert_eq!(err, ParseError::TimedOut(Phase::Header));
    assert_eq!(err.status(), Some(408));
    assert!(
        begin.elapsed() < Duration::from_secs(5),
        "wait must be bounded"
    );
}

#[test]
fn half_open_connection_times_out_silently() {
    // No bytes at all: there is no request to answer, so the reject maps
    // to no status (the server just closes).
    let mut reader = ConnReader::new(Dripper {
        script: b"",
        at: 0,
        ready: false,
    });
    let abort = AtomicBool::new(false);
    let err = parse_request(
        &mut reader,
        &LIMITS,
        Duration::from_millis(50),
        Duration::from_millis(50),
        &abort,
    )
    .unwrap_err();
    assert_eq!(err, ParseError::TimedOutIdle);
    assert_eq!(err.status(), None);
}

#[test]
fn drain_flag_aborts_an_idle_wait() {
    let mut reader = ConnReader::new(Dripper {
        script: b"",
        at: 0,
        ready: false,
    });
    let abort = AtomicBool::new(true);
    let err = parse_request(
        &mut reader,
        &LIMITS,
        Duration::from_secs(30),
        Duration::from_secs(30),
        &abort,
    )
    .unwrap_err();
    assert_eq!(
        err,
        ParseError::Aborted,
        "drain must not wait out the window"
    );
}
