//! # od-http — the hardened HTTP/1.1 serving tier
//!
//! Everything the serving stack guarantees in-process — the typed
//! failure model, deadlines, hot swap, the retrieve→rank funnel —
//! becomes reachable over a wire here, without surrendering any of it to
//! the network: a dependency-free front-end on std's `TcpListener`
//! (zero-dependency discipline, like every crate in this workspace) that
//! survives slow clients, malformed bytes, overload, and restarts.
//!
//! - **Socket-level overload protection.** A bounded accept-handoff
//!   queue and a live-connection cap answer excess connections with an
//!   immediate `503` at the edge; admission backpressure from the engine
//!   ([`Submit::Rejected`](od_serve::Submit)) surfaces as `429` with
//!   `Retry-After`.
//! - **Deadline propagation.** `X-Deadline-Ms` rides into
//!   [`Engine::submit_with_deadline`](od_serve::Engine) — work still
//!   queued past its deadline is dropped at drain and answered `504` —
//!   and every read/write on the socket is deadline-bounded, so neither
//!   a slow-loris client nor a stalled engine can hold a connection
//!   thread hostage.
//! - **Strict parsing, typed rejects.** The incremental parser turns
//!   malformed input into `400`/`413`/`431`/`505` and never panics; a
//!   panic anywhere in a connection handler is caught at the connection
//!   boundary (the engine-supervisor discipline, one layer up).
//! - **Graceful drain.** Shutdown stops accepting, flips `/healthz` to
//!   NOT-READY, answers every in-flight request, and force-resolves
//!   anything still queued after a grace window as `503` — no ticket is
//!   ever left hanging. DESIGN.md §15 documents the wire protocol, the
//!   overload ladder, and the drain state machine.
//!
//! Routes: `POST /v1/score` (raw [`GroupInput`](odnet_core::GroupInput)
//! ranking, sharded across per-core engines by user id),
//! `POST /v1/recommend` (full funnel), `GET /healthz` (readiness),
//! `GET /metrics` (od-obs Prometheus exposition, `od_http_*` series
//! included). The socket-level chaos suite in `tests/chaos.rs` drives
//! half-open connections, byte-at-a-time writers, mid-body disconnects,
//! and injected worker panics under concurrent load, asserting zero lost
//! responses and wire bodies bit-exact with the in-process oracle.

#![warn(missing_docs)]

mod metrics;
pub mod parser;
mod server;
pub mod wire;

pub use parser::{parse_request, ConnReader, Limits, ParseError, ParsedRequest, Phase};
pub use server::{DrainReport, Featurizer, Server, ServerConfig};
