//! The serving front-end: acceptor, connection workers, routing, and the
//! drain state machine.
//!
//! # Thread design
//!
//! One blocking acceptor thread owns the `TcpListener`; accepted sockets
//! are handed through a bounded queue to a small pool of connection
//! workers (thread-per-core spirit: each worker runs one connection's
//! keep-alive loop at a time, and the scoring parallelism lives in the
//! engine shards behind it, not in connection threads). Overload is
//! answered at the socket edge: past [`ServerConfig::max_connections`]
//! live connections — or a full handoff queue — the acceptor writes an
//! immediate `503` and closes, so a flood degrades into cheap rejections
//! instead of unbounded memory.
//!
//! # Deadline ladder
//!
//! Reads are sliced ([`ServerConfig::read_slice`]) so a connection
//! thread re-checks its wall-clock deadline and the drain flag a few
//! times per second: a half-open client is dropped silently at the
//! header window, a slow-loris writer gets `408`, and a parsed request's
//! `X-Deadline-Ms` rides into [`Engine::submit_with_deadline`] — work
//! still queued past the deadline is dropped at drain and answered
//! `504`. Requests without the header get
//! [`ServerConfig::default_max_wait`], so a connection thread is *never*
//! parked unboundedly on a ticket.
//!
//! # Drain state machine (DESIGN.md §15)
//!
//! `Running → Draining → Closed`. [`Server::shutdown`] flips the drain
//! flag (readiness goes NOT-READY, the acceptor answers `503` and
//! exits), lets every connection worker finish the request it holds
//! (idle keep-alive connections close at their next read slice), then
//! force-drains the engine shards within a grace window so any ticket
//! still unresolved answers `503` rather than hanging. The invariant the
//! chaos suite pins: every request whose bytes fully arrived gets a
//! response before the listener closes.

use crate::metrics::HttpMetrics;
use crate::parser::{parse_request, ConnReader, Limits, ParseError, ParsedRequest, Phase};
use crate::wire::{ErrorBody, RecommendRequest, RecommendResponse, ScoreResponse, WirePair};
use od_hsg::UserId;
use od_retrieval::ScoredPair;
use od_serve::{Funnel, ServeError, Submit};
use odnet_core::GroupInput;
use std::collections::VecDeque;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Builds the ranking [`GroupInput`] for a retrieved candidate set —
/// history/context featurization is the caller's (dataset-holding) side
/// of the funnel contract. Candidates must stay in retrieval order.
pub type Featurizer = Arc<dyn Fn(UserId, &[ScoredPair]) -> GroupInput + Send + Sync>;

/// Tuning knobs of the [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; `127.0.0.1:0` picks a free port (see
    /// [`Server::addr`]).
    pub addr: String,
    /// Connection-worker threads (each runs one connection at a time).
    pub conn_workers: usize,
    /// Live-connection cap; connections past it get an immediate 503.
    pub max_connections: usize,
    /// Bounded acceptor→worker handoff queue; a full queue 503s too.
    pub accept_backlog: usize,
    /// Wall-clock budget for reading one request's line + headers; also
    /// the keep-alive idle timeout.
    pub header_timeout: Duration,
    /// Wall-clock budget for reading one request's body.
    pub body_timeout: Duration,
    /// Socket write timeout for responses.
    pub write_timeout: Duration,
    /// Socket read-timeout slice between deadline/drain re-checks.
    pub read_slice: Duration,
    /// Request line + headers byte cap → 431.
    pub max_header_bytes: usize,
    /// Body byte cap → 413.
    pub max_body_bytes: usize,
    /// Engine deadline applied when a request carries no `X-Deadline-Ms`
    /// — the bound on how long a connection thread can hold a ticket.
    pub default_max_wait: Duration,
    /// Grace window [`Server::shutdown`] gives the engine shards to
    /// finish in-flight work before force-rejecting.
    pub drain_grace: Duration,
    /// Honor the `X-Debug-Stall-Ms` header (sleep before dispatch).
    /// Smoke and bench harnesses use it to manufacture a tail-sampled
    /// slow request; never enable on a real listener.
    pub allow_debug_stall: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            conn_workers: 4,
            max_connections: 64,
            accept_backlog: 64,
            header_timeout: Duration::from_secs(5),
            body_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            read_slice: Duration::from_millis(50),
            max_header_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
            default_max_wait: Duration::from_secs(10),
            drain_grace: Duration::from_secs(2),
            allow_debug_stall: false,
        }
    }
}

/// Mint a request id for a request that arrived without `X-Request-Id`
/// (or never got far enough to carry headers): 16 hex digits from a
/// per-process randomly seeded hash of a sequence number — unique within
/// the process, uncorrelated across restarts.
fn mint_request_id() -> String {
    use std::hash::{BuildHasher, Hasher};
    static SEED: std::sync::OnceLock<std::collections::hash_map::RandomState> =
        std::sync::OnceLock::new();
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
    let mut h = SEED.get_or_init(Default::default).build_hasher();
    h.write_u64(NEXT.fetch_add(1, Ordering::Relaxed));
    format!("{:016x}", h.finish())
}

/// What [`Server::shutdown`] observed.
#[derive(Clone, Copy, Debug)]
pub struct DrainReport {
    /// Every engine shard settled (all accepted tickets resolved) within
    /// its grace window.
    pub clean: bool,
    /// Tickets force-resolved `Rejected` (503) across all shards because
    /// the grace window expired first.
    pub drain_rejected: u64,
}

/// Bounded handoff queue between the acceptor and connection workers.
struct ConnQueue {
    state: Mutex<(VecDeque<TcpStream>, bool)>,
    not_empty: Condvar,
    capacity: usize,
}

impl ConnQueue {
    fn new(capacity: usize) -> ConnQueue {
        ConnQueue {
            state: Mutex::new((VecDeque::new(), false)),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, (VecDeque<TcpStream>, bool)> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn try_push(&self, s: TcpStream) -> Result<(), TcpStream> {
        let mut st = self.lock();
        if st.1 || st.0.len() >= self.capacity {
            return Err(s);
        }
        st.0.push_back(s);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    fn pop(&self) -> Option<TcpStream> {
        let mut st = self.lock();
        loop {
            if let Some(s) = st.0.pop_front() {
                return Some(s);
            }
            if st.1 {
                return None;
            }
            st = self.not_empty.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn close(&self) {
        self.lock().1 = true;
        self.not_empty.notify_all();
    }
}

struct Inner {
    shards: Vec<Arc<Funnel>>,
    featurizer: Featurizer,
    config: ServerConfig,
    metrics: HttpMetrics,
    draining: AtomicBool,
    active: AtomicUsize,
    queue: ConnQueue,
}

/// A running HTTP tier over a set of [`Funnel`] shards.
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving. Requests shard by user id
    /// (`user % shards.len()`); all shards must serve the same artifact
    /// universe.
    pub fn start(
        shards: Vec<Arc<Funnel>>,
        featurizer: Featurizer,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        assert!(!shards.is_empty(), "server needs at least one shard");
        assert!(config.conn_workers >= 1, "server needs a connection worker");
        od_obs::clock::calibrate();
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let metrics = HttpMetrics::register();
        metrics.draining.set(0);
        if od_obs::trace::enabled() {
            // Let "slow" track the live workload: the tail sampler keeps
            // anything past the recommend route's p99 even when the
            // configured floor is higher.
            od_obs::trace::global().set_tail_source(metrics.e2e_ns["recommend"].clone());
        }
        let inner = Arc::new(Inner {
            queue: ConnQueue::new(config.accept_backlog),
            shards,
            featurizer,
            config,
            metrics,
            draining: AtomicBool::new(false),
            active: AtomicUsize::new(0),
        });
        let workers: Vec<JoinHandle<()>> = (0..inner.config.conn_workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("od-http-w{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn http worker")
            })
            .collect();
        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("od-http-accept".to_string())
                .spawn(move || accept_loop(&inner, listener))
                .expect("spawn http acceptor")
        };
        Ok(Server {
            inner,
            addr,
            acceptor: Some(acceptor),
            workers: Vec::from_iter(workers),
        })
    }

    /// The bound address (the OS-chosen port when configured with `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful drain: stop accepting, flip readiness, answer every
    /// in-flight request, force-resolve anything still queued in the
    /// engine shards after the grace window, then close. Consumes the
    /// server; returns what the drain observed.
    pub fn shutdown(mut self) -> DrainReport {
        let inner = Arc::clone(&self.inner);
        inner.draining.store(true, Ordering::SeqCst);
        inner.metrics.draining.set(1);
        // Wake the blocking accept with a throwaway connection; the
        // acceptor sees the flag and exits.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // Workers finish the connections they hold (in-flight requests
        // are served to completion; idle keep-alive connections close at
        // their next read slice) plus anything already queued, then exit.
        inner.queue.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Engine-side drain: anything a connection could still be
        // waiting on has resolved by now (workers joined), but queued
        // work submitted by non-HTTP callers of the same shards gets the
        // same bounded guarantee.
        let mut clean = true;
        for shard in &inner.shards {
            clean &= shard.drain(inner.config.drain_grace);
        }
        let drain_rejected = inner
            .shards
            .iter()
            .map(|s| s.engine().health().drain_rejected)
            .sum();
        inner.metrics.zero_gauges();
        DrainReport {
            clean,
            drain_rejected,
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // `shutdown` consumed-and-joined already unless the server was
        // dropped directly; make drop equivalent (idempotent on joins).
        self.inner.draining.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        self.inner.queue.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.inner.metrics.zero_gauges();
    }
}

/// Acceptor thread body.
fn accept_loop(inner: &Arc<Inner>, listener: TcpListener) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if inner.draining.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if inner.draining.load(Ordering::SeqCst) {
            // Includes the shutdown wake-up connection; a real client
            // racing the drain gets the honest answer.
            reject_at_edge(inner, stream, "draining");
            return;
        }
        inner.metrics.accepted.inc();
        if inner.active.load(Ordering::SeqCst) >= inner.config.max_connections {
            inner.metrics.over_capacity.inc();
            reject_at_edge(inner, stream, "connection limit");
            continue;
        }
        inner.active.fetch_add(1, Ordering::SeqCst);
        inner.metrics.active_connections.add(1);
        if let Err(stream) = inner.queue.try_push(stream) {
            inner.active.fetch_sub(1, Ordering::SeqCst);
            inner.metrics.active_connections.sub(1);
            inner.metrics.over_capacity.inc();
            reject_at_edge(inner, stream, "accept queue full");
        }
    }
}

/// Write an immediate 503 + close from the acceptor thread. The write is
/// bounded by a short timeout so a malicious peer cannot stall accepts.
/// Even this path carries an `X-Request-Id` — an edge reject is exactly
/// the response a client will ask the operator about.
fn reject_at_edge(inner: &Arc<Inner>, mut stream: TcpStream, why: &str) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let resp = error_response(503, why)
        .with_header("Retry-After", "1")
        .with_header("X-Request-Id", &mint_request_id());
    if write_response(&mut stream, &resp, true).is_ok() {
        inner.metrics.count_response(503);
    }
}

/// Connection-worker thread body: serve handed-off connections until the
/// queue closes. A panic anywhere in a connection handler is caught at
/// this boundary — the connection dies (socket dropped → peer sees a
/// close), the worker survives for the next connection, mirroring the
/// engine's supervisor discipline.
fn worker_loop(inner: &Arc<Inner>) {
    while let Some(stream) = inner.queue.pop() {
        let r = catch_unwind(AssertUnwindSafe(|| handle_connection(inner, stream)));
        if r.is_err() {
            inner.metrics.conn_panics.inc();
        }
        inner.active.fetch_sub(1, Ordering::SeqCst);
        inner.metrics.active_connections.sub(1);
    }
}

/// One connection's keep-alive loop.
fn handle_connection(inner: &Arc<Inner>, mut stream: TcpStream) {
    let m = &inner.metrics;
    let cfg = &inner.config;
    if stream.set_read_timeout(Some(cfg.read_slice)).is_err()
        || stream.set_write_timeout(Some(cfg.write_timeout)).is_err()
    {
        return;
    }
    let _ = stream.set_nodelay(true);
    let read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = ConnReader::new(read_half);
    let limits = Limits {
        max_header_bytes: cfg.max_header_bytes,
        max_body_bytes: cfg.max_body_bytes,
    };
    loop {
        let t0 = od_obs::clock::now();
        // Per-request deadline reset: each trip through this loop re-arms
        // the header window from "now" — keep-alive reuse never inherits
        // the previous request's spent budget.
        let req = parse_request(
            &mut reader,
            &limits,
            cfg.header_timeout,
            cfg.body_timeout,
            &inner.draining,
        );
        let req = match req {
            Ok(req) => req,
            Err(e) => {
                match &e {
                    ParseError::TimedOut(Phase::Header) | ParseError::TimedOutIdle => {
                        m.timeouts_header.inc()
                    }
                    ParseError::TimedOut(Phase::Body) => m.timeouts_body.inc(),
                    ParseError::Disconnected => m.disconnects.inc(),
                    _ => {}
                }
                if let Some(status) = e.status() {
                    // The request never yielded headers, so the id is
                    // server-minted; the 408/413/431/400/505 ladder is
                    // still correlatable from the client side.
                    let resp = error_response(status, &format!("{e:?}"))
                        .with_header("X-Request-Id", &mint_request_id());
                    if write_response(&mut stream, &resp, true).is_ok() {
                        m.count_response(status);
                    } else {
                        m.disconnects.inc();
                    }
                }
                return;
            }
        };
        let t_read = od_obs::clock::now();
        m.read_ns.record(od_obs::clock::ns_between(t0, t_read));

        // Every request has an id (client-supplied or minted here), and
        // every response echoes it. The trace — when tracing is on —
        // starts under that id; the root span closes after the write.
        let rid = req.request_id.clone().unwrap_or_else(mint_request_id);
        let tracer = od_obs::trace::global();
        let ctx = tracer.begin(&rid);
        tracer.record(ctx, "parse", t0, t_read);

        if inner.config.allow_debug_stall {
            if let Some(ms) = req.debug_stall_ms {
                let s0 = ctx.is_active().then(od_obs::clock::now);
                std::thread::sleep(Duration::from_millis(ms.min(1_000)));
                if let Some(s0) = s0 {
                    tracer.record(ctx, "debug_stall", s0, od_obs::clock::now());
                }
            }
        }

        let route = route_of(&req);
        m.requests[route].inc();
        let resp = dispatch(inner, &req, ctx).with_header("X-Request-Id", &rid);
        let t_handled = od_obs::clock::now();
        m.handle_ns[route].record(od_obs::clock::ns_between(t_read, t_handled));

        // Close after this response if the client asked, the response
        // demands it, or the drain began while we were handling.
        let closing = !req.keep_alive || resp.close || inner.draining.load(Ordering::SeqCst);
        match write_response(&mut stream, &resp, closing) {
            Ok(()) => {
                m.count_response(resp.status);
                let done = od_obs::clock::now();
                m.write_ns
                    .record(od_obs::clock::ns_between(t_handled, done));
                m.e2e_ns[route].record_exemplar(od_obs::clock::ns_between(t0, done), ctx.trace_id);
                tracer.record(ctx, "write", t_handled, done);
                tracer.end(ctx, "request", t0, done, resp.status >= 500);
            }
            Err(_) => {
                m.disconnects.inc();
                // The response never reached the peer: close the trace as
                // an error (also frees the in-flight slot).
                tracer.end(ctx, "request", t0, od_obs::clock::now(), true);
                return;
            }
        }
        if closing {
            return;
        }
    }
}

/// The metrics route label of a request.
fn route_of(req: &ParsedRequest) -> &'static str {
    match req.path.as_str() {
        "/v1/score" => "score",
        "/v1/recommend" => "recommend",
        "/healthz" => "healthz",
        "/metrics" => "metrics",
        _ => "other",
    }
}

/// An assembled response, not yet written.
struct Response {
    status: u16,
    content_type: &'static str,
    body: Vec<u8>,
    headers: Vec<(&'static str, String)>,
    /// Force `Connection: close` regardless of the client's preference.
    close: bool,
}

impl Response {
    fn json(status: u16, body: Vec<u8>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body,
            headers: Vec::new(),
            close: false,
        }
    }

    fn text(status: u16, body: &str) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.as_bytes().to_vec(),
            headers: Vec::new(),
            close: false,
        }
    }

    fn with_header(mut self, name: &'static str, value: &str) -> Response {
        self.headers.push((name, value.to_string()));
        self
    }
}

/// A typed-error JSON response.
fn error_response(status: u16, why: &str) -> Response {
    let body = serde_json::to_string(&ErrorBody {
        error: why.to_string(),
    })
    .unwrap_or_else(|_| "{\"error\":\"error\"}".to_string());
    Response::json(status, body.into_bytes())
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Content Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

fn write_response(stream: &mut TcpStream, resp: &Response, closing: bool) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    for (name, value) in &resp.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    if closing {
        head.push_str("Connection: close\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

/// Route one parsed request to its handler.
fn dispatch(inner: &Arc<Inner>, req: &ParsedRequest, ctx: od_obs::trace::TraceContext) -> Response {
    let path = req.path.split('?').next().unwrap_or("");
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => healthz(inner),
        ("GET", "/metrics") => Response::text(200, &od_obs::global().snapshot().to_prometheus()),
        ("GET", "/debug/traces") => debug_traces(req),
        ("POST", "/v1/score") => score(inner, req, ctx),
        ("POST", "/v1/recommend") => recommend(inner, req, ctx),
        (_, "/healthz") | (_, "/metrics") | (_, "/debug/traces") => {
            error_response(405, "method not allowed").with_header("Allow", "GET")
        }
        (_, "/v1/score") | (_, "/v1/recommend") => {
            error_response(405, "method not allowed").with_header("Allow", "POST")
        }
        _ => error_response(404, "no such route"),
    }
}

/// `GET /debug/traces`: dump the tail-sampled trace ring. Query knobs:
/// `min_ms=<n>` (minimum root duration), `errors=1` (error traces only),
/// `limit=<n>` (newest n), `format=chrome` (Chrome `trace_event` JSON,
/// loadable in `chrome://tracing` / Perfetto; default is the native
/// shape).
fn debug_traces(req: &ParsedRequest) -> Response {
    let tracer = od_obs::trace::global();
    if !tracer.enabled() {
        return error_response(503, "tracing is not enabled");
    }
    let query = req.path.split_once('?').map_or("", |(_, q)| q);
    let mut min_ns = 0u64;
    let mut errors_only = false;
    let mut limit = 0usize;
    let mut chrome = false;
    for kv in query.split('&').filter(|s| !s.is_empty()) {
        let (k, v) = kv.split_once('=').unwrap_or((kv, ""));
        match k {
            "min_ms" => min_ns = v.parse::<u64>().unwrap_or(0).saturating_mul(1_000_000),
            "errors" => errors_only = v == "1" || v == "true",
            "limit" => limit = v.parse().unwrap_or(0),
            "format" => chrome = v == "chrome",
            _ => return error_response(400, &format!("unknown query key: {k}")),
        }
    }
    let traces = tracer.snapshot(min_ns, errors_only, limit);
    let body = if chrome {
        od_obs::trace::to_chrome(&traces)
    } else {
        od_obs::trace::to_json(&traces)
    };
    Response::json(200, body.into_bytes())
}

/// Readiness: NOT-READY while draining or when any shard has no live
/// worker to score with.
fn healthz(inner: &Arc<Inner>) -> Response {
    if inner.draining.load(Ordering::SeqCst) {
        let mut r = Response::text(503, "draining\n");
        r.close = true;
        return r;
    }
    for shard in &inner.shards {
        let h = shard.engine().health();
        if h.configured_workers > 0 && h.live_workers == 0 {
            return Response::text(503, "no live workers\n");
        }
    }
    Response::text(200, "ok\n")
}

/// The engine deadline of a request: `X-Deadline-Ms` when present, the
/// configured default otherwise — a connection thread never waits
/// unboundedly on a ticket.
fn deadline_of(inner: &Inner, req: &ParsedRequest) -> Instant {
    let wait = req
        .deadline_ms
        .map(Duration::from_millis)
        .unwrap_or(inner.config.default_max_wait);
    Instant::now() + wait
}

/// `POST /v1/score`: body is a [`GroupInput`]; sharded by user id.
fn score(inner: &Arc<Inner>, req: &ParsedRequest, ctx: od_obs::trace::TraceContext) -> Response {
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => return error_response(400, "body is not utf-8"),
    };
    let group: GroupInput = match serde_json::from_str(body) {
        Ok(g) => g,
        Err(e) => return error_response(400, &format!("bad group: {e}")),
    };
    let deadline = deadline_of(inner, req);
    let shard = &inner.shards[group.user.index() % inner.shards.len()];
    let ticket = match shard.engine().submit_traced(group, Some(deadline), ctx) {
        Submit::Accepted(t) => t,
        Submit::Rejected(_) => {
            return error_response(429, "backpressure").with_header("Retry-After", "1")
        }
        Submit::Invalid { error, .. } => {
            return error_response(400, &format!("invalid group: {error:?}"))
        }
    };
    let wait = deadline.saturating_duration_since(Instant::now());
    match ticket.wait_versioned_timeout(wait) {
        Ok(scored) => {
            let body = ScoreResponse {
                scores: scored.scores,
                epoch: scored.version.epoch,
                checksum: scored.version.checksum,
            };
            match serde_json::to_string(&body) {
                Ok(s) => Response::json(200, s.into_bytes())
                    .with_header("X-Artifact-Epoch", &body.epoch.to_string())
                    .with_header("X-Artifact-Checksum", &body.checksum.to_string()),
                Err(_) => error_response(500, "serialization failed"),
            }
        }
        // A ticket that resolves `Rejected` after acceptance means the
        // engine shut down (or force-drained) under this connection —
        // unconditionally 503; submit-time backpressure was the 429
        // above.
        Err(ServeError::Rejected) => {
            let mut r = error_response(503, "engine shut down");
            r.close = true;
            r
        }
        Err(e) => serve_error_response(inner, e, ctx),
    }
}

/// `POST /v1/recommend`: run the full funnel for one user.
fn recommend(
    inner: &Arc<Inner>,
    req: &ParsedRequest,
    ctx: od_obs::trace::TraceContext,
) -> Response {
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => return error_response(400, "body is not utf-8"),
    };
    let ask: RecommendRequest = match serde_json::from_str(body) {
        Ok(r) => r,
        Err(e) => return error_response(400, &format!("bad request: {e}")),
    };
    if ask.k == 0 {
        return error_response(400, "k must be at least 1");
    }
    let shard = &inner.shards[ask.user as usize % inner.shards.len()];
    if ask.user as usize >= shard.num_users() {
        return error_response(400, "user outside the artifact universe");
    }
    // In-universe (checked above) implies the id fits the u32 id space.
    let user = UserId(ask.user as u32);
    let deadline = deadline_of(inner, req);
    let featurizer = Arc::clone(&inner.featurizer);
    match shard.recommend_traced(user, ask.k, Some(deadline), ctx, |pairs| {
        featurizer(user, pairs)
    }) {
        Ok(rec) => {
            let body = RecommendResponse {
                pairs: rec
                    .pairs
                    .iter()
                    .map(|p| WirePair {
                        origin: p.origin.0,
                        dest: p.dest.0,
                        retrieval_score: p.retrieval_score,
                        p_origin: p.p_origin,
                        p_dest: p.p_dest,
                        rank_score: p.rank_score,
                    })
                    .collect(),
                retrieved_by: rec.retrieved_by.into(),
                ranked_by: rec.ranked_by.into(),
            };
            match serde_json::to_string(&body) {
                Ok(s) => Response::json(200, s.into_bytes())
                    .with_header("X-Artifact-Epoch", &body.ranked_by.epoch.to_string())
                    .with_header("X-Artifact-Checksum", &body.ranked_by.checksum.to_string()),
                Err(_) => error_response(500, "serialization failed"),
            }
        }
        Err(e) => serve_error_response(inner, e, ctx),
    }
}

/// The overload ladder: map a typed [`ServeError`] on a resolved ticket
/// to its status. `Rejected` *after* acceptance means the engine shut
/// down (or force-drained) under the caller — 503, while backpressure at
/// submit is the 429 handled at the submit site. The deadline/panic
/// failure surfaces name the trace id so the body alone is enough to pull
/// the captured trace from `/debug/traces`.
fn serve_error_response(
    inner: &Arc<Inner>,
    e: ServeError,
    ctx: od_obs::trace::TraceContext,
) -> Response {
    let traced = |why: &str| {
        if ctx.is_active() {
            format!("{why} (trace {})", od_obs::trace::hex_id(ctx.trace_id))
        } else {
            why.to_string()
        }
    };
    match e {
        ServeError::DeadlineExceeded => error_response(504, &traced("deadline exceeded")),
        ServeError::WorkerPanicked => error_response(500, &traced("worker panicked")),
        ServeError::InvalidInput(err) => error_response(400, &format!("invalid group: {err:?}")),
        ServeError::Rejected => {
            if inner.draining.load(Ordering::SeqCst) {
                let mut r = error_response(503, "draining");
                r.close = true;
                r
            } else {
                // The funnel collapses submit-time backpressure into the
                // same variant; without drain in progress that is the
                // retryable case.
                error_response(429, "backpressure").with_header("Retry-After", "1")
            }
        }
    }
}
