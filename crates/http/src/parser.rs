//! A strict, incremental HTTP/1.1 request parser over any [`Read`].
//!
//! The contract that matters for an internet-facing tier:
//!
//! - **Malformed input is a typed error, never a panic.** Every reject
//!   carries the status it maps to (400/413/431/505), and the fuzz-style
//!   table tests in `tests/parser.rs` drive the grammar's edges.
//! - **Progress is bounded in bytes and time.** Headers are capped at
//!   [`Limits::max_header_bytes`], bodies at
//!   [`Limits::max_body_bytes`] (checked against `Content-Length`
//!   *before* reading, and enforced chunk-by-chunk for chunked bodies),
//!   and every blocking read is a short slice: the caller arms a socket
//!   read timeout, and the parser re-checks its wall-clock deadline and
//!   the drain flag between slices — a slow-loris client holds a
//!   connection thread no longer than the header/body window.
//! - **Smuggling-shaped ambiguity is rejected.** Duplicate
//!   `Content-Length`, `Content-Length` together with
//!   `Transfer-Encoding`, any transfer coding other than exactly
//!   `chunked`, and bare-LF line endings are all 400s.
//!
//! The parser owns a persistent [`ConnReader`] per connection, so bytes a
//! client pipelines past one request's body are kept for the next
//! request — keep-alive never drops or re-reads wire bytes.

use std::io::Read;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Byte budgets enforced while reading one request.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Request line + headers cap → 431 when exceeded.
    pub max_header_bytes: usize,
    /// Body cap → 413 when exceeded (declared or streamed).
    pub max_body_bytes: usize,
}

/// Which read window a timeout fired in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Reading the request line + headers.
    Header,
    /// Reading the body.
    Body,
}

/// Why one request could not be produced.
#[derive(Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Clean EOF at a request boundary — the keep-alive loop just ends.
    IdleClose,
    /// The drain flag was raised while idle at a request boundary.
    Aborted,
    /// The deadline passed before any byte of this request arrived
    /// (half-open connection) — close silently, nothing to answer.
    TimedOutIdle,
    /// The deadline passed mid-request (slow-loris) → 408.
    TimedOut(Phase),
    /// The peer vanished mid-request (reset / shutdown) — a 400 is
    /// attempted but usually nobody is left to read it.
    Disconnected,
    /// Request line + headers exceeded the byte cap → 431.
    HeadersTooLarge,
    /// Body exceeded the byte cap → 413.
    BodyTooLarge,
    /// Grammar violation → 400; the label names the first rule broken.
    Malformed(&'static str),
    /// An HTTP version other than 1.0/1.1 → 505.
    UnsupportedVersion,
}

/// One fully received request, decoded as far as routing needs.
#[derive(Debug)]
pub struct ParsedRequest {
    /// Request method, verbatim (`GET`, `POST`, …).
    pub method: String,
    /// Request target, percent-encoding left untouched.
    pub path: String,
    /// Whether the connection may serve another request after this one.
    pub keep_alive: bool,
    /// Parsed `X-Deadline-Ms` header, when present.
    pub deadline_ms: Option<u64>,
    /// Client-supplied `X-Request-Id`, sanitized (token chars only,
    /// truncated to 64 bytes). `None` when absent or entirely illegal —
    /// the server then mints one.
    pub request_id: Option<String>,
    /// Parsed `X-Debug-Stall-Ms` header — honored only when the server
    /// was started with stall injection enabled (smoke/bench runs use it
    /// to manufacture a tail-sampled slow request).
    pub debug_stall_ms: Option<u64>,
    /// The (de-chunked) body bytes.
    pub body: Vec<u8>,
}

/// Buffered reader pinned to one connection: keeps pipelined bytes
/// across requests and turns the socket's short read-timeout slices into
/// deadline- and drain-aware blocking.
pub struct ConnReader<R> {
    inner: R,
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by previous requests.
    pos: usize,
}

/// What one fill attempt produced.
enum Fill {
    /// At least one new byte is buffered.
    Data,
    /// Clean EOF from the peer.
    Eof,
    /// The socket's read-timeout slice elapsed with no data.
    Slice,
    /// Hard I/O error (connection reset and kin).
    Gone,
}

impl<R: Read> ConnReader<R> {
    /// Wrap `inner`; the caller arms the socket-level read timeout that
    /// bounds each blocking slice.
    pub fn new(inner: R) -> ConnReader<R> {
        ConnReader {
            inner,
            buf: Vec::with_capacity(1024),
            pos: 0,
        }
    }

    /// Unconsumed bytes currently buffered.
    fn available(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Drop consumed bytes once the buffer's dead prefix dominates.
    fn compact(&mut self) {
        if self.pos > 0 && self.pos >= self.buf.len() / 2 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    /// One read slice into the buffer.
    fn fill(&mut self) -> Fill {
        self.compact();
        let mut chunk = [0u8; 1024];
        match self.inner.read(&mut chunk) {
            Ok(0) => Fill::Eof,
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                Fill::Data
            }
            Err(e) => match e.kind() {
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => Fill::Slice,
                std::io::ErrorKind::Interrupted => Fill::Slice,
                _ => Fill::Gone,
            },
        }
    }

    /// Block (in slices) until at least `n` unconsumed bytes are
    /// buffered, the deadline passes, or the peer goes away.
    fn want(
        &mut self,
        n: usize,
        deadline: Instant,
        phase: Phase,
        started: bool,
        abort: &AtomicBool,
    ) -> Result<(), ParseError> {
        while self.available() < n {
            match self.fill() {
                Fill::Data => continue,
                Fill::Eof => {
                    return Err(if !started && self.available() == 0 {
                        ParseError::IdleClose
                    } else {
                        ParseError::Malformed("unexpected eof mid-request")
                    });
                }
                Fill::Gone => return Err(ParseError::Disconnected),
                Fill::Slice => {
                    let idle = !started && self.available() == 0;
                    if idle && abort.load(Ordering::SeqCst) {
                        return Err(ParseError::Aborted);
                    }
                    if Instant::now() >= deadline {
                        return Err(if idle {
                            ParseError::TimedOutIdle
                        } else {
                            ParseError::TimedOut(phase)
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Find `\r\n\r\n` in the unconsumed bytes, reading as needed;
    /// returns the header block (without the terminator) and consumes it.
    fn read_head(
        &mut self,
        limits: &Limits,
        deadline: Instant,
        abort: &AtomicBool,
    ) -> Result<Vec<u8>, ParseError> {
        let mut scanned: usize = 0;
        loop {
            let hay = &self.buf[self.pos..];
            if let Some(at) = find(&hay[scanned.saturating_sub(3)..], b"\r\n\r\n") {
                let end = scanned.saturating_sub(3) + at;
                if end > limits.max_header_bytes {
                    return Err(ParseError::HeadersTooLarge);
                }
                let head = hay[..end].to_vec();
                self.pos += end + 4;
                return Ok(head);
            }
            if hay.len() > limits.max_header_bytes {
                return Err(ParseError::HeadersTooLarge);
            }
            scanned = hay.len();
            let started = scanned > 0;
            self.want(scanned + 1, deadline, Phase::Header, started, abort)?;
        }
    }

    /// Consume exactly `n` body bytes.
    fn read_exact_body(
        &mut self,
        n: usize,
        deadline: Instant,
        abort: &AtomicBool,
        out: &mut Vec<u8>,
    ) -> Result<(), ParseError> {
        self.want(n, deadline, Phase::Body, true, abort)?;
        out.extend_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(())
    }

    /// Consume one CRLF-terminated line (for chunk framing); the CRLF is
    /// consumed but not returned. Lines longer than 256 bytes are
    /// rejected — chunk-size lines have no business being longer.
    fn read_line(&mut self, deadline: Instant, abort: &AtomicBool) -> Result<Vec<u8>, ParseError> {
        let mut scanned: usize = 0;
        loop {
            let hay = &self.buf[self.pos..];
            if let Some(at) = find(&hay[scanned.saturating_sub(1)..], b"\r\n") {
                let end = scanned.saturating_sub(1) + at;
                let line = hay[..end].to_vec();
                self.pos += end + 2;
                return Ok(line);
            }
            if hay.len() > 256 {
                return Err(ParseError::Malformed("chunk framing line too long"));
            }
            scanned = hay.len();
            self.want(scanned + 1, deadline, Phase::Body, true, abort)?;
        }
    }
}

/// First index of `needle` in `hay`.
fn find(hay: &[u8], needle: &[u8]) -> Option<usize> {
    hay.windows(needle.len()).position(|w| w == needle)
}

/// Decoded header fields routing cares about.
struct Headers {
    content_length: Option<usize>,
    chunked: bool,
    keep_alive: Option<bool>,
    deadline_ms: Option<u64>,
    request_id: Option<String>,
    debug_stall_ms: Option<u64>,
}

/// Keep only request-id token characters (RFC 7230 token minus quoting
/// hazards), capped at 64 bytes so a hostile id can't bloat logs or
/// trace storage. Returns `None` if nothing legal survives.
fn sanitize_request_id(raw: &str) -> Option<String> {
    let id: String = raw
        .chars()
        .filter(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.' | ':'))
        .take(64)
        .collect();
    (!id.is_empty()).then_some(id)
}

fn parse_headers(block: &str) -> Result<Headers, ParseError> {
    let mut h = Headers {
        content_length: None,
        chunked: false,
        keep_alive: None,
        deadline_ms: None,
        request_id: None,
        debug_stall_ms: None,
    };
    let mut saw_te = false;
    for line in block.split("\r\n") {
        if line.is_empty() {
            return Err(ParseError::Malformed("empty header line"));
        }
        if line.contains('\n') {
            return Err(ParseError::Malformed("bare lf in headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(ParseError::Malformed("header line without a colon"))?;
        if name.is_empty()
            || !name
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
        {
            return Err(ParseError::Malformed("illegal header name"));
        }
        let value = value.trim();
        match name.to_ascii_lowercase().as_str() {
            "content-length" => {
                if h.content_length.is_some() {
                    return Err(ParseError::Malformed("duplicate content-length"));
                }
                let n: usize = value
                    .parse()
                    .map_err(|_| ParseError::Malformed("non-numeric content-length"))?;
                h.content_length = Some(n);
            }
            "transfer-encoding" => {
                if saw_te {
                    return Err(ParseError::Malformed("duplicate transfer-encoding"));
                }
                saw_te = true;
                if !value.eq_ignore_ascii_case("chunked") {
                    return Err(ParseError::Malformed("unsupported transfer-encoding"));
                }
                h.chunked = true;
            }
            "connection" => {
                if value.eq_ignore_ascii_case("close") {
                    h.keep_alive = Some(false);
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    h.keep_alive = Some(true);
                }
            }
            "x-deadline-ms" => {
                let ms: u64 = value
                    .parse()
                    .map_err(|_| ParseError::Malformed("non-numeric x-deadline-ms"))?;
                h.deadline_ms = Some(ms);
            }
            "x-request-id" => {
                h.request_id = sanitize_request_id(value);
            }
            "x-debug-stall-ms" => {
                // Best-effort debug knob: a bad value is ignored, not a
                // 400 — it must never take a production request down.
                h.debug_stall_ms = value.parse().ok();
            }
            _ => {}
        }
    }
    if h.chunked && h.content_length.is_some() {
        // The classic request-smuggling ambiguity: two framings, two
        // different bodies. Refuse instead of picking one.
        return Err(ParseError::Malformed(
            "content-length and transfer-encoding together",
        ));
    }
    Ok(h)
}

/// Read and decode one request. `header_timeout` bounds the wait for the
/// full head (measured from call — at a keep-alive boundary this is the
/// idle timeout too); `body_timeout` re-arms once the head is in.
/// `abort` is the server's drain flag: raised while this connection is
/// idle between requests, the parser returns [`ParseError::Aborted`]
/// instead of waiting out the header window.
pub fn parse_request<R: Read>(
    reader: &mut ConnReader<R>,
    limits: &Limits,
    header_timeout: Duration,
    body_timeout: Duration,
    abort: &AtomicBool,
) -> Result<ParsedRequest, ParseError> {
    let head = reader.read_head(limits, Instant::now() + header_timeout, abort)?;
    let head =
        std::str::from_utf8(&head).map_err(|_| ParseError::Malformed("non-utf8 header block"))?;
    let (request_line, header_block) = match head.split_once("\r\n") {
        Some((rl, rest)) => (rl, rest),
        None => (head, ""),
    };
    if request_line.contains('\n') {
        return Err(ParseError::Malformed("bare lf in request line"));
    }

    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("");
    let path = parts
        .next()
        .ok_or(ParseError::Malformed("no request target"))?;
    let version = parts
        .next()
        .ok_or(ParseError::Malformed("no http version"))?;
    if parts.next().is_some() {
        return Err(ParseError::Malformed("extra tokens in request line"));
    }
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(ParseError::Malformed("illegal method"));
    }
    if path.is_empty() || !path.starts_with('/') {
        return Err(ParseError::Malformed("target must be origin-form"));
    }
    if path.bytes().any(|b| !(0x21..=0x7e).contains(&b)) {
        return Err(ParseError::Malformed("illegal byte in target"));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(ParseError::UnsupportedVersion),
    };

    let headers = if header_block.is_empty() {
        parse_headers_empty()
    } else {
        parse_headers(header_block)?
    };
    let keep_alive = headers.keep_alive.unwrap_or(http11);

    let body_deadline = Instant::now() + body_timeout;
    let mut body = Vec::new();
    if headers.chunked {
        read_chunked(reader, limits, body_deadline, abort, &mut body)?;
    } else if let Some(n) = headers.content_length {
        if n > limits.max_body_bytes {
            return Err(ParseError::BodyTooLarge);
        }
        reader.read_exact_body(n, body_deadline, abort, &mut body)?;
    }

    Ok(ParsedRequest {
        method: method.to_string(),
        path: path.to_string(),
        keep_alive,
        deadline_ms: headers.deadline_ms,
        request_id: headers.request_id,
        debug_stall_ms: headers.debug_stall_ms,
        body,
    })
}

fn parse_headers_empty() -> Headers {
    Headers {
        content_length: None,
        chunked: false,
        keep_alive: None,
        deadline_ms: None,
        request_id: None,
        debug_stall_ms: None,
    }
}

/// Strict chunked-body decoding: hex size line (extensions rejected),
/// exactly `size` bytes, a mandatory CRLF, and a bare terminating
/// `0\r\n\r\n` (no trailers).
fn read_chunked<R: Read>(
    reader: &mut ConnReader<R>,
    limits: &Limits,
    deadline: Instant,
    abort: &AtomicBool,
    out: &mut Vec<u8>,
) -> Result<(), ParseError> {
    loop {
        let line = reader.read_line(deadline, abort)?;
        let line =
            std::str::from_utf8(&line).map_err(|_| ParseError::Malformed("non-utf8 chunk size"))?;
        if line.is_empty() || line.contains(';') {
            return Err(ParseError::Malformed("bad chunk size line"));
        }
        let size = usize::from_str_radix(line, 16)
            .map_err(|_| ParseError::Malformed("non-hex chunk size"))?;
        if size == 0 {
            let trailer = reader.read_line(deadline, abort)?;
            if !trailer.is_empty() {
                return Err(ParseError::Malformed("trailers are not accepted"));
            }
            return Ok(());
        }
        if out.len() + size > limits.max_body_bytes {
            return Err(ParseError::BodyTooLarge);
        }
        reader.read_exact_body(size, deadline, abort, out)?;
        let mut crlf = Vec::new();
        reader.read_exact_body(2, deadline, abort, &mut crlf)?;
        if crlf != b"\r\n" {
            return Err(ParseError::Malformed("chunk data not crlf-terminated"));
        }
    }
}

impl ParseError {
    /// The HTTP status this reject maps to, when one can still be sent
    /// (`None` means close silently: nothing of this request arrived, or
    /// nobody is left to read an answer).
    pub fn status(&self) -> Option<u16> {
        match self {
            ParseError::IdleClose
            | ParseError::Aborted
            | ParseError::TimedOutIdle
            | ParseError::Disconnected => None,
            ParseError::TimedOut(_) => Some(408),
            ParseError::HeadersTooLarge => Some(431),
            ParseError::BodyTooLarge => Some(413),
            ParseError::Malformed(_) => Some(400),
            ParseError::UnsupportedVersion => Some(505),
        }
    }
}
