//! HTTP-tier observability: the `od_http_*` instrument set.
//!
//! Registered once per [`Server`](crate::Server) into the process-global
//! od-obs registry, merged into the same `/metrics` exposition the
//! engine and retrieval series already share.
//!
//! # Metric inventory
//!
//! | series | kind | meaning |
//! |---|---|---|
//! | `od_http_accepted_total` | counter | connections accepted into the tier |
//! | `od_http_over_capacity_total` | counter | connections answered 503 at the socket edge |
//! | `od_http_requests_total{route=…}` | counter | requests routed, by route |
//! | `od_http_responses_total{code=…}` | counter | responses written, by status code |
//! | `od_http_timeouts_total{phase=…}` | counter | read deadlines hit (header/body) |
//! | `od_http_disconnects_total` | counter | peers gone mid-request or mid-response |
//! | `od_http_connection_panics_total` | counter | connection handlers that panicked (caught) |
//! | `od_http_active_connections` | gauge | connections currently held |
//! | `od_http_draining` | gauge | 1 while the drain state machine is past Running |
//! | `od_http_read_ns` | histogram | request read+parse time |
//! | `od_http_handle_ns{route=…}` | histogram | route handling time (engine wait included) |
//! | `od_http_write_ns` | histogram | response serialization+write time |
//! | `od_http_e2e_ns{route=…}` | histogram | first byte parsed → response written |
//!
//! Counter handles for the known status codes are pre-registered so the
//! hot path never takes the registry lock; an unexpected code lands in
//! `code="other"`.

use od_obs::{global, Counter, Gauge, LatencyHistogram};
use std::collections::HashMap;

/// Routes with their own labeled series.
pub(crate) const ROUTES: [&str; 5] = ["score", "recommend", "healthz", "metrics", "other"];

/// Status codes with pre-registered counter handles.
const CODES: [u16; 13] = [
    200, 400, 404, 405, 408, 413, 429, 431, 500, 503, 504, 505, 0,
];

/// The instruments of one server.
pub(crate) struct HttpMetrics {
    pub accepted: Counter,
    pub over_capacity: Counter,
    pub requests: HashMap<&'static str, Counter>,
    pub responses: HashMap<u16, Counter>,
    pub timeouts_header: Counter,
    pub timeouts_body: Counter,
    pub disconnects: Counter,
    pub conn_panics: Counter,
    pub active_connections: Gauge,
    pub draining: Gauge,
    pub read_ns: LatencyHistogram,
    pub handle_ns: HashMap<&'static str, LatencyHistogram>,
    pub write_ns: LatencyHistogram,
    pub e2e_ns: HashMap<&'static str, LatencyHistogram>,
}

impl HttpMetrics {
    pub(crate) fn register() -> HttpMetrics {
        let reg = global();
        let timeouts = |phase: &str| {
            reg.counter_with(
                "od_http_timeouts_total",
                "Read deadlines hit, by phase",
                &[("phase", phase)],
            )
        };
        HttpMetrics {
            accepted: reg.counter(
                "od_http_accepted_total",
                "Connections accepted into the tier",
            ),
            over_capacity: reg.counter(
                "od_http_over_capacity_total",
                "Connections answered 503 at the socket edge (cap or drain)",
            ),
            requests: ROUTES
                .iter()
                .map(|&r| {
                    (
                        r,
                        reg.counter_with(
                            "od_http_requests_total",
                            "Requests routed, by route",
                            &[("route", r)],
                        ),
                    )
                })
                .collect(),
            responses: CODES
                .iter()
                .map(|&c| {
                    let label = if c == 0 {
                        "other".to_string()
                    } else {
                        c.to_string()
                    };
                    (
                        c,
                        reg.counter_with(
                            "od_http_responses_total",
                            "Responses written, by status code",
                            &[("code", &label)],
                        ),
                    )
                })
                .collect(),
            timeouts_header: timeouts("header"),
            timeouts_body: timeouts("body"),
            disconnects: reg.counter(
                "od_http_disconnects_total",
                "Peers gone mid-request or mid-response",
            ),
            conn_panics: reg.counter(
                "od_http_connection_panics_total",
                "Connection handlers that panicked (caught at the boundary)",
            ),
            active_connections: reg.gauge(
                "od_http_active_connections",
                "Connections currently held by the tier",
            ),
            draining: reg.gauge("od_http_draining", "1 while draining, else 0"),
            read_ns: reg.histogram("od_http_read_ns", "Request read+parse time"),
            handle_ns: ROUTES
                .iter()
                .map(|&r| {
                    (
                        r,
                        reg.histogram_with(
                            "od_http_handle_ns",
                            "Route handling time (engine wait included)",
                            &[("route", r)],
                        ),
                    )
                })
                .collect(),
            write_ns: reg.histogram("od_http_write_ns", "Response serialization+write time"),
            e2e_ns: ROUTES
                .iter()
                .map(|&r| {
                    (
                        r,
                        reg.histogram_with(
                            "od_http_e2e_ns",
                            "First byte parsed to response written, by route",
                            &[("route", r)],
                        ),
                    )
                })
                .collect(),
        }
    }

    /// Count one written response by status code.
    pub(crate) fn count_response(&self, code: u16) {
        self.responses
            .get(&code)
            .unwrap_or_else(|| &self.responses[&0])
            .inc();
    }

    /// Zero the instantaneous series at teardown.
    pub(crate) fn zero_gauges(&self) {
        self.active_connections.set(0);
        self.draining.set(0);
    }
}
