//! The JSON wire protocol (DESIGN.md §15).
//!
//! Bodies are the serde types below, encoded with the vendored
//! `serde_json`. Floats print as shortest-round-trip decimals, so an
//! `f32` score survives encode → decode **bit-exactly** — the wire-level
//! bit-exactness assertions in `tests/chaos.rs` lean on this (the
//! vendored crate pins it with its own round-trip test).

use od_serve::ArtifactVersion;

/// `POST /v1/score` request body is [`odnet_core::GroupInput`] itself —
/// the same serde shape `odnet score --group` reads from disk.
///
/// `POST /v1/score` 200 body: per-candidate probabilities plus the
/// generation that scored them.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
pub struct ScoreResponse {
    /// Per-candidate `(p^O, p^D)`, in candidate order.
    pub scores: Vec<(f32, f32)>,
    /// Publish epoch of the generation that scored this request.
    pub epoch: u64,
    /// Artifact checksum of that generation.
    pub checksum: u32,
}

/// `POST /v1/recommend` request body.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
pub struct RecommendRequest {
    /// User to recommend for (must be inside the artifact universe).
    pub user: u64,
    /// How many OD pairs to return.
    pub k: usize,
}

/// `POST /v1/recommend` 200 body.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
pub struct RecommendResponse {
    /// Pairs in final rank order.
    pub pairs: Vec<WirePair>,
    /// Generation whose tables produced the candidate set.
    pub retrieved_by: WireVersion,
    /// Generation whose ranker scored it (can differ mid-swap).
    pub ranked_by: WireVersion,
}

/// One ranked OD pair on the wire.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
pub struct WirePair {
    /// Origin city id.
    pub origin: u32,
    /// Destination city id.
    pub dest: u32,
    /// Separable retrieval-stage score.
    pub retrieval_score: f32,
    /// Ranker origin-task probability `p^O`.
    pub p_origin: f32,
    /// Ranker destination-task probability `p^D`.
    pub p_dest: f32,
    /// Final blended rank key.
    pub rank_score: f32,
}

/// An artifact generation stamp on the wire.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
pub struct WireVersion {
    /// Publish epoch.
    pub epoch: u64,
    /// Artifact checksum.
    pub checksum: u32,
}

impl From<ArtifactVersion> for WireVersion {
    fn from(v: ArtifactVersion) -> WireVersion {
        WireVersion {
            epoch: v.epoch,
            checksum: v.checksum,
        }
    }
}

/// Non-2xx JSON body: one machine-readable reason string.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
pub struct ErrorBody {
    /// What went wrong, e.g. `"backpressure"` or `"deadline exceeded"`.
    pub error: String,
}
