//! City coordinates, the distance matrix `D` of Definition 1, and the
//! inverse-distance spatial weights of Eq. 2.

use serde::{Deserialize, Serialize};

/// Geographic coordinates of a city in degrees.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Longitude in degrees.
    pub lon: f64,
    /// Latitude in degrees.
    pub lat: f64,
}

impl GeoPoint {
    /// The paper's distance (Def. 1): the L2 norm over longitude/latitude
    /// values of the two cities.
    pub fn l2(self, other: GeoPoint) -> f64 {
        let dl = self.lon - other.lon;
        let dp = self.lat - other.lat;
        (dl * dl + dp * dp).sqrt()
    }

    /// Great-circle distance in kilometres (haversine). Not used by the
    /// model (the paper specifies L2), but exposed for data generation and
    /// diagnostics.
    pub fn haversine_km(self, other: GeoPoint) -> f64 {
        const R: f64 = 6371.0;
        let (lat1, lat2) = (self.lat.to_radians(), other.lat.to_radians());
        let dlat = lat2 - lat1;
        let dlon = (other.lon - self.lon).to_radians();
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * R * a.sqrt().asin()
    }
}

/// Symmetric city-city distance matrix (the `D ∈ R^{n×n}` of Def. 1) with
/// precomputed spatial weights `w_ij` (Eq. 2).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DistanceMatrix {
    n: usize,
    /// Row-major pairwise L2 distances.
    dist: Vec<f32>,
    /// Row-major spatial weights of Eq. 2: `w_ii = 0`,
    /// `w_ij = (1/d_ij) / Σ_p (1/d_ip)` for `i ≠ j`. Each row sums to 1
    /// (for n ≥ 2).
    weights: Vec<f32>,
}

impl DistanceMatrix {
    /// Minimum distance clamp — coincident cities would otherwise produce an
    /// infinite inverse-distance weight.
    const MIN_DIST: f64 = 1e-6;

    /// Build from per-city coordinates using the paper's L2 distance.
    pub fn from_coords(coords: &[GeoPoint]) -> Self {
        let n = coords.len();
        let mut dist = vec![0.0f32; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = coords[i].l2(coords[j]).max(Self::MIN_DIST) as f32;
                dist[i * n + j] = d;
                dist[j * n + i] = d;
            }
        }
        let weights = Self::weights_from_dist(n, &dist);
        DistanceMatrix { n, dist, weights }
    }

    /// Build directly from a full row-major distance matrix (tests,
    /// alternative metrics). Diagonal entries are ignored for weighting.
    pub fn from_raw(n: usize, dist: Vec<f32>) -> Self {
        assert_eq!(dist.len(), n * n, "distance matrix must be n×n");
        let weights = Self::weights_from_dist(n, &dist);
        DistanceMatrix { n, dist, weights }
    }

    fn weights_from_dist(n: usize, dist: &[f32]) -> Vec<f32> {
        let mut weights = vec![0.0f32; n * n];
        for i in 0..n {
            let mut denom = 0.0f64;
            for p in 0..n {
                if p != i {
                    denom += 1.0 / dist[i * n + p].max(Self::MIN_DIST as f32) as f64;
                }
            }
            if denom == 0.0 {
                continue;
            }
            for j in 0..n {
                if j != i {
                    let inv = 1.0 / dist[i * n + j].max(Self::MIN_DIST as f32) as f64;
                    weights[i * n + j] = (inv / denom) as f32;
                }
            }
        }
        weights
    }

    /// Number of cities.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the matrix covers no cities.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Pairwise distance `d_ij`.
    pub fn distance(&self, i: usize, j: usize) -> f32 {
        self.dist[i * self.n + j]
    }

    /// Spatial weight `w_ij` of Eq. 2.
    pub fn weight(&self, i: usize, j: usize) -> f32 {
        self.weights[i * self.n + j]
    }

    /// The full weight row for city `i` (sums to 1 for n ≥ 2).
    pub fn weight_row(&self, i: usize) -> &[f32] {
        &self.weights[i * self.n..(i + 1) * self.n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_cities() -> Vec<GeoPoint> {
        vec![
            GeoPoint { lon: 0.0, lat: 0.0 },
            GeoPoint { lon: 3.0, lat: 0.0 },
            GeoPoint { lon: 0.0, lat: 4.0 },
        ]
    }

    #[test]
    fn l2_distance_matches_geometry() {
        let c = square_cities();
        assert_eq!(c[0].l2(c[1]), 3.0);
        assert_eq!(c[0].l2(c[2]), 4.0);
        assert_eq!(c[1].l2(c[2]), 5.0);
        assert_eq!(c[0].l2(c[0]), 0.0);
    }

    #[test]
    fn haversine_known_value() {
        // Beijing → Shanghai ≈ 1068 km.
        let beijing = GeoPoint {
            lon: 116.4,
            lat: 39.9,
        };
        let shanghai = GeoPoint {
            lon: 121.47,
            lat: 31.23,
        };
        let d = beijing.haversine_km(shanghai);
        assert!((d - 1068.0).abs() < 30.0, "got {d}");
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let m = DistanceMatrix::from_coords(&square_cities());
        for i in 0..3 {
            assert_eq!(m.distance(i, i), 0.0);
            for j in 0..3 {
                assert_eq!(m.distance(i, j), m.distance(j, i));
            }
        }
    }

    #[test]
    fn eq2_weights_diagonal_zero_rows_sum_to_one() {
        let m = DistanceMatrix::from_coords(&square_cities());
        for i in 0..3 {
            assert_eq!(m.weight(i, i), 0.0);
            let sum: f32 = m.weight_row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {i} sums to {sum}");
        }
    }

    #[test]
    fn nearer_city_gets_larger_weight() {
        // From city 0, city 1 (d=3) must outweigh city 2 (d=4).
        let m = DistanceMatrix::from_coords(&square_cities());
        assert!(m.weight(0, 1) > m.weight(0, 2));
        // Exact Eq. 2 check: w_01 = (1/3)/(1/3 + 1/4).
        let expected = (1.0 / 3.0) / (1.0 / 3.0 + 1.0 / 4.0);
        assert!((m.weight(0, 1) - expected).abs() < 1e-6);
    }

    #[test]
    fn coincident_cities_are_clamped_not_infinite() {
        let coords = vec![
            GeoPoint { lon: 1.0, lat: 1.0 },
            GeoPoint { lon: 1.0, lat: 1.0 },
            GeoPoint { lon: 2.0, lat: 2.0 },
        ];
        let m = DistanceMatrix::from_coords(&coords);
        assert!(m.weight(0, 1).is_finite());
        assert!(m.weight(0, 1) > m.weight(0, 2));
    }

    #[test]
    fn single_city_has_empty_weights() {
        let m = DistanceMatrix::from_coords(&[GeoPoint { lon: 0.0, lat: 0.0 }]);
        assert_eq!(m.len(), 1);
        assert_eq!(m.weight(0, 0), 0.0);
    }

    #[test]
    fn from_raw_validates_size() {
        let m = DistanceMatrix::from_raw(2, vec![0.0, 1.0, 1.0, 0.0]);
        assert_eq!(m.weight(0, 1), 1.0);
    }

    #[test]
    #[should_panic(expected = "must be n×n")]
    fn from_raw_rejects_bad_size() {
        DistanceMatrix::from_raw(2, vec![0.0; 3]);
    }
}
