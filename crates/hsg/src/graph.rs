//! The Heterogeneous Spatial Graph itself (paper Definition 1) and
//! metapath-based neighbor-city queries (Definitions 2–3).

use crate::csr::Csr;
use crate::distance::{DistanceMatrix, GeoPoint};
use crate::ids::{CityId, EdgeType, Metapath, Node, UserId};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One historical user-city interaction: user `u` booked a flight whose
/// origin was `origin` and destination was `dest`. Each record contributes a
/// departure edge `(u, origin)` and an arrive edge `(u, dest)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Interaction {
    /// The booking user.
    pub user: UserId,
    /// Origin city of the flight.
    pub origin: CityId,
    /// Destination city of the flight.
    pub dest: CityId,
}

/// Builder accumulating interactions before freezing into an [`Hsg`].
#[derive(Debug)]
pub struct HsgBuilder {
    num_users: usize,
    coords: Vec<GeoPoint>,
    /// Per edge type, user→city edge lists.
    edges: [Vec<(u32, u32)>; 2],
}

impl HsgBuilder {
    /// Start a builder for `num_users` users and the given city coordinates.
    pub fn new(num_users: usize, coords: Vec<GeoPoint>) -> Self {
        HsgBuilder {
            num_users,
            coords,
            edges: [Vec::new(), Vec::new()],
        }
    }

    /// Add one booking interaction (a departure edge and an arrive edge).
    pub fn add_interaction(&mut self, it: Interaction) -> &mut Self {
        assert!(it.user.index() < self.num_users, "user id out of range");
        assert!(
            it.origin.index() < self.coords.len() && it.dest.index() < self.coords.len(),
            "city id out of range"
        );
        self.edges[EdgeType::Departure.index()].push((it.user.0, it.origin.0));
        self.edges[EdgeType::Arrive.index()].push((it.user.0, it.dest.0));
        self
    }

    /// Add a single typed edge directly (used when clicks and bookings are
    /// ingested separately).
    pub fn add_edge(&mut self, user: UserId, city: CityId, edge_type: EdgeType) -> &mut Self {
        assert!(user.index() < self.num_users, "user id out of range");
        assert!(city.index() < self.coords.len(), "city id out of range");
        self.edges[edge_type.index()].push((user.0, city.0));
        self
    }

    /// Freeze into an immutable [`Hsg`], building both adjacency directions
    /// and the distance matrix.
    pub fn build(self) -> Hsg {
        let num_cities = self.coords.len();
        let user_to_city = self
            .edges
            .clone()
            .map(|e| Csr::from_edges(self.num_users, e));
        let city_to_user = self
            .edges
            .map(|e| Csr::from_edges(num_cities, e.into_iter().map(|(u, c)| (c, u))));
        let dist = DistanceMatrix::from_coords(&self.coords);
        Hsg {
            num_users: self.num_users,
            coords: self.coords,
            user_to_city,
            city_to_user,
            dist,
        }
    }
}

/// The frozen Heterogeneous Spatial Graph: `HSG(V, E, D)` with
/// `φ: V → {user, city}` and `ψ: E → {departure, arrive}` (Def. 1).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Hsg {
    num_users: usize,
    coords: Vec<GeoPoint>,
    user_to_city: [Csr; 2],
    city_to_user: [Csr; 2],
    dist: DistanceMatrix,
}

impl Hsg {
    /// Number of user-type nodes.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Number of city-type nodes.
    pub fn num_cities(&self) -> usize {
        self.coords.len()
    }

    /// Total node count `|V|`.
    pub fn num_nodes(&self) -> usize {
        self.num_users + self.num_cities()
    }

    /// Total edge count `|E|` (deduplicated, across both types).
    pub fn num_edges(&self) -> usize {
        self.user_to_city.iter().map(Csr::num_edges).sum()
    }

    /// Coordinates of a city node.
    pub fn coords(&self, city: CityId) -> GeoPoint {
        self.coords[city.index()]
    }

    /// The distance matrix `D` and Eq. 2 spatial weights.
    pub fn distances(&self) -> &DistanceMatrix {
        &self.dist
    }

    /// Whether user `u` has an edge of `edge_type` to `city`.
    pub fn has_edge(&self, user: UserId, city: CityId, edge_type: EdgeType) -> bool {
        self.user_to_city[edge_type.index()].contains(user.index(), city.0)
    }

    /// Cities adjacent to a user under the given edge type — the user's
    /// metapath-based 1st-order neighbor cities `N¹_ρ(u)` (Def. 3): for ρ₁
    /// these are all historical departure cities of the user.
    pub fn user_neighbor_cities(&self, user: UserId, metapath: Metapath) -> &[u32] {
        self.user_to_city[metapath.edge_type().index()].neighbors(user.index())
    }

    /// Users adjacent to a city under the given edge type.
    pub fn city_neighbor_users(&self, city: CityId, edge_type: EdgeType) -> &[u32] {
        self.city_to_user[edge_type.index()].neighbors(city.index())
    }

    /// A city's metapath-based 1st-order neighbor cities `N¹_ρ(c)` (Def. 3):
    /// the other cities visited (under the same edge type) by users who
    /// visited `c` — i.e. a two-hop walk city → user → city along ρ,
    /// excluding `c` itself. Sorted and deduplicated.
    pub fn city_neighbor_cities(&self, city: CityId, metapath: Metapath) -> Vec<u32> {
        self.city_neighbor_cities_weighted(city, metapath)
            .into_iter()
            .map(|(c, _)| c)
            .collect()
    }

    /// Like [`Hsg::city_neighbor_cities`] but with **co-visitation
    /// strengths**: `w(c → c') = Σ_u count(u, c) · count(u, c')` over the
    /// two-hop walks. Co-visitation frequency is what distinguishes a
    /// same-pattern companion city from incidental noise; the neighbor
    /// sampler keeps the strongest ties. Sorted by city id.
    pub fn city_neighbor_cities_weighted(
        &self,
        city: CityId,
        metapath: Metapath,
    ) -> Vec<(u32, u64)> {
        let et = metapath.edge_type().index();
        let mut weights: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
        let users = self.city_to_user[et].neighbors(city.index());
        let user_counts = self.city_to_user[et].counts(city.index());
        for (&u, &uc) in users.iter().zip(user_counts) {
            let cities = self.user_to_city[et].neighbors(u as usize);
            let city_counts = self.user_to_city[et].counts(u as usize);
            for (&c, &cc) in cities.iter().zip(city_counts) {
                if c != city.0 {
                    *weights.entry(c).or_insert(0) += uc as u64 * cc as u64;
                }
            }
        }
        weights.into_iter().collect()
    }

    /// Degree of a node under one edge type.
    pub fn degree(&self, node: Node, edge_type: EdgeType) -> usize {
        match node {
            Node::User(u) => self.user_to_city[edge_type.index()].degree(u.index()),
            Node::City(c) => self.city_to_user[edge_type.index()].degree(c.index()),
        }
    }

    /// Precompute, for every node, its (possibly sampled) 1st-order neighbor
    /// cities along `metapath` — the neighborhood table Algorithm 1 consumes,
    /// capped at `cap` neighbors per node following the paper's §V-A.5 cap
    /// of 5 (after Fan et al., KDD'19).
    ///
    /// Sampling is **importance-weighted**: user nodes keep their most
    /// frequently booked cities, city nodes their strongest co-visitation
    /// companions. In dense interaction graphs the deduplicated neighbor
    /// *set* approaches "every city" and carries no signal; the tie
    /// strengths carry all of it. Ties beyond the cap are broken uniformly
    /// at random via `rng`.
    ///
    /// Returned layout: `users[u]` then `cities[c]`, each a `Vec<CityId>`.
    pub fn neighbor_table(
        &self,
        metapath: Metapath,
        cap: usize,
        rng: &mut impl Rng,
    ) -> NeighborTable {
        assert!(cap > 0, "neighbor cap must be positive");
        let et = metapath.edge_type().index();
        let mut users = Vec::with_capacity(self.num_users);
        for u in 0..self.num_users {
            let weighted: Vec<(u32, u64)> = self.user_to_city[et]
                .neighbors(u)
                .iter()
                .zip(self.user_to_city[et].counts(u))
                .map(|(&c, &n)| (c, n as u64))
                .collect();
            users.push(top_by_weight(weighted, cap, rng));
        }
        let mut cities = Vec::with_capacity(self.num_cities());
        for c in 0..self.num_cities() {
            let weighted = self.city_neighbor_cities_weighted(CityId(c as u32), metapath);
            cities.push(top_by_weight(weighted, cap, rng));
        }
        NeighborTable {
            metapath,
            cap,
            users,
            cities,
        }
    }
}

/// Keep the `cap` heaviest entries (random tie-breaking), sorted by id for
/// deterministic downstream iteration.
fn top_by_weight(mut weighted: Vec<(u32, u64)>, cap: usize, rng: &mut impl Rng) -> Vec<CityId> {
    if weighted.len() > cap {
        // Shuffle first so equal weights are broken uniformly, then a
        // stable sort by weight keeps the shuffle order within ties.
        weighted.shuffle(rng);
        weighted.sort_by_key(|&(_, w)| std::cmp::Reverse(w));
        weighted.truncate(cap);
    }
    let mut picked: Vec<u32> = weighted.into_iter().map(|(c, _)| c).collect();
    picked.sort_unstable();
    picked.into_iter().map(CityId).collect()
}

/// Frozen per-node sampled neighborhoods for one metapath — the
/// `N_ρ: v → 2^V` mapping function input of Algorithm 1.
#[derive(Clone, Debug)]
pub struct NeighborTable {
    metapath: Metapath,
    cap: usize,
    users: Vec<Vec<CityId>>,
    cities: Vec<Vec<CityId>>,
}

impl NeighborTable {
    /// The metapath this table was sampled for.
    pub fn metapath(&self) -> Metapath {
        self.metapath
    }

    /// The sampling cap used.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Sampled neighbor cities of a user node.
    pub fn of_user(&self, user: UserId) -> &[CityId] {
        &self.users[user.index()]
    }

    /// Sampled neighbor cities of a city node.
    pub fn of_city(&self, city: CityId) -> &[CityId] {
        &self.cities[city.index()]
    }

    /// Sampled neighbor cities of any node.
    pub fn of(&self, node: Node) -> &[CityId] {
        match node {
            Node::User(u) => self.of_user(u),
            Node::City(c) => self.of_city(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The Figure-2 style toy graph: 2 users, 4 cities.
    /// u0 departs from c0 and c1; arrives at c2 and c3.
    /// u1 departs from c1; arrives at c2.
    fn toy() -> Hsg {
        let coords = (0..4)
            .map(|i| GeoPoint {
                lon: i as f64,
                lat: 0.0,
            })
            .collect();
        let mut b = HsgBuilder::new(2, coords);
        b.add_interaction(Interaction {
            user: UserId(0),
            origin: CityId(0),
            dest: CityId(2),
        });
        b.add_interaction(Interaction {
            user: UserId(0),
            origin: CityId(1),
            dest: CityId(3),
        });
        b.add_interaction(Interaction {
            user: UserId(1),
            origin: CityId(1),
            dest: CityId(2),
        });
        b.build()
    }

    #[test]
    fn counts() {
        let g = toy();
        assert_eq!(g.num_users(), 2);
        assert_eq!(g.num_cities(), 4);
        assert_eq!(g.num_nodes(), 6);
        // 3 departure edges (u0-c0, u0-c1, u1-c1) + 3 arrive edges.
        assert_eq!(g.num_edges(), 6);
    }

    #[test]
    fn user_neighbor_cities_are_direct_edges() {
        let g = toy();
        // ρ1 (departure): u0's neighbor cities are its departure cities.
        assert_eq!(g.user_neighbor_cities(UserId(0), Metapath::RHO1), &[0, 1]);
        // ρ2 (arrive): u0's arrive cities.
        assert_eq!(g.user_neighbor_cities(UserId(0), Metapath::RHO2), &[2, 3]);
        assert_eq!(g.user_neighbor_cities(UserId(1), Metapath::RHO1), &[1]);
    }

    #[test]
    fn city_neighbor_cities_are_two_hops_excluding_self() {
        let g = toy();
        // ρ2: users arriving at c2 are {u0, u1}; their other arrive cities:
        // u0 → {c3}, u1 → {} ⇒ N¹_ρ2(c2) = {c3}.
        assert_eq!(g.city_neighbor_cities(CityId(2), Metapath::RHO2), &[3]);
        // ρ1: users departing c1 are {u0, u1}; u0's other departures: {c0}.
        assert_eq!(g.city_neighbor_cities(CityId(1), Metapath::RHO1), &[0]);
        // A city nobody departs from has no ρ1 city neighbors.
        assert!(g.city_neighbor_cities(CityId(3), Metapath::RHO1).is_empty());
    }

    #[test]
    fn has_edge_respects_type() {
        let g = toy();
        assert!(g.has_edge(UserId(0), CityId(0), EdgeType::Departure));
        assert!(!g.has_edge(UserId(0), CityId(0), EdgeType::Arrive));
        assert!(g.has_edge(UserId(1), CityId(2), EdgeType::Arrive));
    }

    #[test]
    fn degrees() {
        let g = toy();
        assert_eq!(g.degree(Node::User(UserId(0)), EdgeType::Departure), 2);
        assert_eq!(g.degree(Node::City(CityId(1)), EdgeType::Departure), 2);
        assert_eq!(g.degree(Node::City(CityId(0)), EdgeType::Arrive), 0);
    }

    #[test]
    fn duplicate_interactions_collapse() {
        let coords = vec![
            GeoPoint { lon: 0.0, lat: 0.0 },
            GeoPoint { lon: 1.0, lat: 0.0 },
        ];
        let mut b = HsgBuilder::new(1, coords);
        let it = Interaction {
            user: UserId(0),
            origin: CityId(0),
            dest: CityId(1),
        };
        b.add_interaction(it).add_interaction(it);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    #[should_panic(expected = "user id out of range")]
    fn builder_validates_user_ids() {
        let mut b = HsgBuilder::new(1, vec![GeoPoint { lon: 0.0, lat: 0.0 }]);
        b.add_edge(UserId(5), CityId(0), EdgeType::Departure);
    }

    #[test]
    fn neighbor_table_respects_cap_and_subsets() {
        let coords = (0..10)
            .map(|i| GeoPoint {
                lon: i as f64,
                lat: 0.0,
            })
            .collect();
        let mut b = HsgBuilder::new(1, coords);
        for c in 0..10u32 {
            b.add_edge(UserId(0), CityId(c), EdgeType::Departure);
        }
        let g = b.build();
        let mut rng = StdRng::seed_from_u64(3);
        let table = g.neighbor_table(Metapath::RHO1, 5, &mut rng);
        let sampled = table.of_user(UserId(0));
        assert_eq!(sampled.len(), 5, "cap must bind");
        // Sampled set ⊆ full set.
        let full = g.user_neighbor_cities(UserId(0), Metapath::RHO1);
        for c in sampled {
            assert!(full.contains(&c.0));
        }
        // Sorted and distinct.
        assert!(sampled.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn neighbor_table_keeps_small_neighborhoods_whole() {
        let g = toy();
        let mut rng = StdRng::seed_from_u64(3);
        let table = g.neighbor_table(Metapath::RHO2, 5, &mut rng);
        assert_eq!(table.of_user(UserId(0)), &[CityId(2), CityId(3)]);
        assert_eq!(table.of_city(CityId(2)), &[CityId(3)]);
        assert_eq!(table.cap(), 5);
        assert_eq!(table.metapath().edge_type(), EdgeType::Arrive);
        assert_eq!(table.of(Node::User(UserId(1))), &[CityId(2)]);
    }
}
