//! Compressed sparse row adjacency — the storage format for each
//! (source type, edge type) relation of the HSG.

use serde::{Deserialize, Serialize};

/// Immutable CSR adjacency: `offsets.len() == num_sources + 1`, and the
/// neighbors of source `i` are `targets[offsets[i]..offsets[i+1]]`.
/// Neighbor lists are sorted and deduplicated; `counts` keeps the edge
/// multiplicity (how many raw interactions collapsed into each edge) —
/// repeat bookings are a strength signal consumed by weighted neighbor
/// sampling.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    counts: Vec<u32>,
}

impl Csr {
    /// Build from an edge list `(source, target)`. Duplicate edges collapse
    /// into one edge with its multiplicity recorded.
    pub fn from_edges(num_sources: usize, edges: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); num_sources];
        for (s, t) in edges {
            adj[s as usize].push(t);
        }
        let mut offsets = Vec::with_capacity(num_sources + 1);
        let mut targets = Vec::new();
        let mut counts = Vec::new();
        offsets.push(0);
        for mut list in adj {
            list.sort_unstable();
            let mut i = 0;
            while i < list.len() {
                let mut j = i;
                while j + 1 < list.len() && list[j + 1] == list[i] {
                    j += 1;
                }
                targets.push(list[i]);
                counts.push((j - i + 1) as u32);
                i = j + 1;
            }
            offsets.push(targets.len() as u32);
        }
        Csr {
            offsets,
            targets,
            counts,
        }
    }

    /// An adjacency with `num_sources` sources and no edges.
    pub fn empty(num_sources: usize) -> Self {
        Csr {
            offsets: vec![0; num_sources + 1],
            targets: Vec::new(),
            counts: Vec::new(),
        }
    }

    /// Number of source nodes.
    pub fn num_sources(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of (deduplicated) edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Sorted, deduplicated neighbor list of `source`.
    pub fn neighbors(&self, source: usize) -> &[u32] {
        let lo = self.offsets[source] as usize;
        let hi = self.offsets[source + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Edge multiplicities aligned with [`Csr::neighbors`].
    pub fn counts(&self, source: usize) -> &[u32] {
        let lo = self.offsets[source] as usize;
        let hi = self.offsets[source + 1] as usize;
        &self.counts[lo..hi]
    }

    /// Out-degree of `source`.
    pub fn degree(&self, source: usize) -> usize {
        (self.offsets[source + 1] - self.offsets[source]) as usize
    }

    /// Whether an edge `source → target` exists (binary search).
    pub fn contains(&self, source: usize, target: u32) -> bool {
        self.neighbors(source).binary_search(&target).is_ok()
    }

    /// Iterate over all `(source, target)` pairs.
    pub fn iter_edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.num_sources())
            .flat_map(move |s| self.neighbors(s).iter().map(move |&t| (s as u32, t)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_deduped_lists() {
        let csr = Csr::from_edges(3, vec![(0, 2), (0, 1), (0, 2), (2, 0)]);
        assert_eq!(csr.neighbors(0), &[1, 2]);
        assert_eq!(csr.neighbors(1), &[] as &[u32]);
        assert_eq!(csr.neighbors(2), &[0]);
        assert_eq!(csr.num_edges(), 3);
        assert_eq!(csr.num_sources(), 3);
        // Multiplicities: (0,2) appeared twice.
        assert_eq!(csr.counts(0), &[1, 2]);
        assert_eq!(csr.counts(2), &[1]);
    }

    #[test]
    fn degree_and_contains() {
        let csr = Csr::from_edges(2, vec![(0, 5), (0, 9), (1, 3)]);
        assert_eq!(csr.degree(0), 2);
        assert_eq!(csr.degree(1), 1);
        assert!(csr.contains(0, 5));
        assert!(!csr.contains(0, 3));
    }

    #[test]
    fn empty_adjacency() {
        let csr = Csr::empty(4);
        assert_eq!(csr.num_sources(), 4);
        assert_eq!(csr.num_edges(), 0);
        for s in 0..4 {
            assert!(csr.neighbors(s).is_empty());
        }
    }

    #[test]
    fn iter_edges_round_trips() {
        let edges = vec![(0u32, 1u32), (1, 0), (1, 2)];
        let csr = Csr::from_edges(3, edges.clone());
        let collected: Vec<_> = csr.iter_edges().collect();
        assert_eq!(collected, edges);
    }

    #[test]
    fn serde_round_trip() {
        let csr = Csr::from_edges(2, vec![(0, 1), (1, 0)]);
        let json = serde_json::to_string(&csr).unwrap();
        let back: Csr = serde_json::from_str(&json).unwrap();
        assert_eq!(back, csr);
    }
}
