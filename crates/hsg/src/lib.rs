//! # od-hsg — the Heterogeneous Spatial Graph
//!
//! Implements the paper's Definitions 1–3: a heterogeneous graph with
//! user/city node types and departure/arrive edge types, an L2
//! longitude/latitude distance matrix with the Eq. 2 inverse-distance
//! spatial weights, metapath-based neighbor-city queries (ρ₁ over departure
//! edges, ρ₂ over arrive edges), and capped uniform neighbor sampling
//! (the paper restricts each node's neighborhood to 5).
//!
//! The graph is built from historical booking interactions:
//!
//! ```
//! use od_hsg::{HsgBuilder, Interaction, UserId, CityId, GeoPoint, Metapath};
//!
//! let coords = vec![
//!     GeoPoint { lon: 121.47, lat: 31.23 }, // Shanghai
//!     GeoPoint { lon: 109.51, lat: 18.25 }, // Sanya
//!     GeoPoint { lon: 120.38, lat: 36.07 }, // Qingdao
//! ];
//! let mut builder = HsgBuilder::new(1, coords);
//! builder.add_interaction(Interaction {
//!     user: UserId(0), origin: CityId(0), dest: CityId(1),
//! });
//! builder.add_interaction(Interaction {
//!     user: UserId(0), origin: CityId(0), dest: CityId(2),
//! });
//! let hsg = builder.build();
//! // Sanya and Qingdao become each other's metapath-ρ₂ neighbor cities:
//! assert_eq!(hsg.city_neighbor_cities(CityId(1), Metapath::RHO2), vec![2]);
//! ```

#![warn(missing_docs)]

mod csr;
mod distance;
mod graph;
mod ids;

pub use csr::Csr;
pub use distance::{DistanceMatrix, GeoPoint};
pub use graph::{Hsg, HsgBuilder, Interaction, NeighborTable};
pub use ids::{CityId, EdgeType, Metapath, Node, UserId};
