//! Strongly-typed identifiers for the two node types and two edge types of
//! the HSG (paper Definition 1).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a user-type node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UserId(pub u32);

/// Index of a city-type node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CityId(pub u32);

impl UserId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl CityId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl fmt::Debug for CityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A node of either type — the domain of the mapping function φ in Def. 1.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Node {
    /// A user-type node.
    User(UserId),
    /// A city-type node.
    City(CityId),
}

/// The two edge types ψ of Def. 1. A *departure* edge links a user to a city
/// they departed from (the flight's O); an *arrive* edge links a user to a
/// city they arrived at (the flight's D).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum EdgeType {
    /// User departed from the city (origin side).
    Departure,
    /// User arrived at the city (destination side).
    Arrive,
}

impl EdgeType {
    /// Both edge types, in a fixed order usable for array indexing.
    pub const ALL: [EdgeType; 2] = [EdgeType::Departure, EdgeType::Arrive];

    /// Dense index (0 = departure, 1 = arrive).
    pub fn index(self) -> usize {
        match self {
            EdgeType::Departure => 0,
            EdgeType::Arrive => 1,
        }
    }
}

/// The two metapath families of Def. 2: ρ₁ alternates user/city nodes over
/// departure edges, ρ₂ over arrive edges. A metapath is fully determined by
/// its edge type, so this is a thin semantic alias.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Metapath(pub EdgeType);

impl Metapath {
    /// ρ₁: the departure metapath (origin-aware exploration).
    pub const RHO1: Metapath = Metapath(EdgeType::Departure);
    /// ρ₂: the arrive metapath (destination-aware exploration).
    pub const RHO2: Metapath = Metapath(EdgeType::Arrive);

    /// The uniform edge type along this metapath.
    pub fn edge_type(self) -> EdgeType {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_type_indices_are_dense() {
        assert_eq!(EdgeType::Departure.index(), 0);
        assert_eq!(EdgeType::Arrive.index(), 1);
        assert_eq!(EdgeType::ALL[0], EdgeType::Departure);
        assert_eq!(EdgeType::ALL[1], EdgeType::Arrive);
    }

    #[test]
    fn metapath_aliases() {
        assert_eq!(Metapath::RHO1.edge_type(), EdgeType::Departure);
        assert_eq!(Metapath::RHO2.edge_type(), EdgeType::Arrive);
    }

    #[test]
    fn debug_formatting() {
        assert_eq!(format!("{:?}", UserId(3)), "u3");
        assert_eq!(format!("{:?}", CityId(7)), "c7");
        assert_eq!(format!("{:?}", Node::User(UserId(1))), "User(u1)");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(UserId(1) < UserId(2));
        assert!(CityId(0) < CityId(9));
        assert_eq!(CityId(4).index(), 4);
    }
}
