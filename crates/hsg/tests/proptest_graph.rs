//! Property-based tests of HSG invariants over randomly generated
//! interaction sets.

use od_hsg::{CityId, EdgeType, GeoPoint, HsgBuilder, Interaction, Metapath, UserId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const USERS: usize = 8;
const CITIES: usize = 12;

fn interactions() -> impl Strategy<Value = Vec<Interaction>> {
    prop::collection::vec((0..USERS as u32, 0..CITIES as u32, 0..CITIES as u32), 1..60).prop_map(
        |raw| {
            raw.into_iter()
                .filter(|(_, o, d)| o != d)
                .map(|(u, o, d)| Interaction {
                    user: UserId(u),
                    origin: CityId(o),
                    dest: CityId(d),
                })
                .collect()
        },
    )
}

fn build(interactions: &[Interaction]) -> od_hsg::Hsg {
    let coords = (0..CITIES)
        .map(|i| GeoPoint {
            lon: (i % 4) as f64 * 1.5,
            lat: (i / 4) as f64 * 2.0,
        })
        .collect();
    let mut b = HsgBuilder::new(USERS, coords);
    for &it in interactions {
        b.add_interaction(it);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn user_neighbors_match_interactions(its in interactions()) {
        let g = build(&its);
        for u in 0..USERS as u32 {
            let expected_o: std::collections::BTreeSet<u32> = its
                .iter()
                .filter(|it| it.user.0 == u)
                .map(|it| it.origin.0)
                .collect();
            let got: Vec<u32> = g
                .user_neighbor_cities(UserId(u), Metapath::RHO1)
                .to_vec();
            prop_assert_eq!(got, expected_o.into_iter().collect::<Vec<_>>());
        }
    }

    #[test]
    fn city_neighbor_relation_is_symmetric(its in interactions()) {
        // Along one metapath, c' ∈ N¹(c) ⇔ c ∈ N¹(c') (they share a user).
        let g = build(&its);
        for rho in [Metapath::RHO1, Metapath::RHO2] {
            for c in 0..CITIES as u32 {
                for &c2 in &g.city_neighbor_cities(CityId(c), rho) {
                    let back = g.city_neighbor_cities(CityId(c2), rho);
                    prop_assert!(
                        back.contains(&c),
                        "asymmetric neighborhood {c} → {c2}"
                    );
                }
            }
        }
    }

    #[test]
    fn city_neighbors_exclude_self_and_are_sorted(its in interactions()) {
        let g = build(&its);
        for c in 0..CITIES as u32 {
            let n = g.city_neighbor_cities(CityId(c), Metapath::RHO2);
            prop_assert!(!n.contains(&c));
            prop_assert!(n.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn sampled_tables_are_subsets_within_cap(its in interactions(), cap in 1usize..6) {
        let g = build(&its);
        let mut rng = StdRng::seed_from_u64(42);
        for rho in [Metapath::RHO1, Metapath::RHO2] {
            let table = g.neighbor_table(rho, cap, &mut rng);
            for u in 0..USERS as u32 {
                let sampled = table.of_user(UserId(u));
                let full = g.user_neighbor_cities(UserId(u), rho);
                prop_assert!(sampled.len() <= cap);
                prop_assert!(sampled.len() == full.len().min(cap));
                for c in sampled {
                    prop_assert!(full.contains(&c.0));
                }
            }
            for c in 0..CITIES as u32 {
                let sampled = table.of_city(CityId(c));
                let full = g.city_neighbor_cities(CityId(c), rho);
                prop_assert!(sampled.len() <= cap);
                for s in sampled {
                    prop_assert!(full.contains(&s.0));
                }
            }
        }
    }

    #[test]
    fn edge_counts_are_bounded_by_interactions(its in interactions()) {
        prop_assume!(!its.is_empty());
        let g = build(&its);
        // Deduplication means at most 2 edges per interaction, and every
        // interaction contributes at least its own pair once.
        prop_assert!(g.num_edges() <= 2 * its.len());
        prop_assert!(g.num_edges() >= 2);
    }

    #[test]
    fn spatial_weight_rows_sum_to_one(its in interactions()) {
        let g = build(&its);
        let d = g.distances();
        for i in 0..CITIES {
            let sum: f32 = d.weight_row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row {i} sums to {sum}");
            prop_assert_eq!(d.weight(i, i), 0.0);
        }
    }

    #[test]
    fn degrees_match_neighbor_lengths(its in interactions()) {
        let g = build(&its);
        for u in 0..USERS as u32 {
            for et in EdgeType::ALL {
                let len = g
                    .user_neighbor_cities(UserId(u), Metapath(et))
                    .len();
                prop_assert_eq!(g.degree(od_hsg::Node::User(UserId(u)), et), len);
            }
        }
    }
}
