#!/usr/bin/env sh
# CI gate: formatting, lints, the full test suite, and a smoke run of the
# serving benchmark (which refreshes BENCH_serving.json at the repo root).
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test -q --workspace

echo "==> frozen-equivalence (serving artifact vs live tape)"
cargo test -q -p odnet-core --test frozen_equivalence

echo "==> serving bench (smoke)"
CRITERION_QUICK=1 cargo bench -p od-bench --bench serving_bench

echo "==> throughput smoke (engine vs direct scoring, coalescing engaged)"
# Tiny model, 2 workers, 1k requests; --check fails the gate unless every
# engine response is bit-identical to single-threaded scoring and
# cross-request coalescing merged at least one batch.
cargo run --release --bin odnet -- serve-bench --workers 2 --requests 1000 --check

echo "==> chaos suite (panic isolation, deadlines, supervision)"
cargo test -q -p od-serve --test chaos

echo "==> fault-injection smoke (3 worker panics under load)"
# Fixed fault seed (batches 3, 7, 11); --check fails the gate unless the
# run survived with zero lost tickets, bit-exact surviving responses, and
# health counters (worker panics, respawns, pool size) reconciling with
# the injected fault count.
cargo run --release --bin odnet -- serve-bench --workers 2 --clients 8 \
    --requests 2000 --inject-panics 3 --check

echo "CI OK"
