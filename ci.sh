#!/usr/bin/env sh
# CI gate: formatting, lints, the full test suite, and a smoke run of the
# serving benchmark (which refreshes BENCH_serving.json at the repo root).
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test -q --workspace

echo "==> frozen-equivalence (serving artifact vs live tape)"
cargo test -q -p odnet-core --test frozen_equivalence

echo "==> serving bench (smoke)"
CRITERION_QUICK=1 cargo bench -p od-bench --bench serving_bench

echo "==> throughput smoke (engine vs direct scoring, coalescing engaged)"
# Tiny model, 2 workers, 1k requests; --check fails the gate unless every
# engine response is bit-identical to single-threaded scoring and
# cross-request coalescing merged at least one batch.
cargo run --release --bin odnet -- serve-bench --workers 2 --requests 1000 --check

echo "CI OK"
