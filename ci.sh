#!/usr/bin/env sh
# CI gate: formatting, lints, the full test suite, and a smoke run of the
# serving benchmark (which refreshes BENCH_serving.json at the repo root).
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test -q --workspace

echo "==> frozen-equivalence (serving artifact vs live tape; JSON/bin/mmap bit-identity)"
cargo test -q -p odnet-core --test frozen_equivalence

echo "==> artifact corruption robustness (.odz loader rejects tampered files)"
cargo test -q -p odnet-core --test artifact_corruption

echo "==> artifact round trip: freeze -> mmap -> serve (bit-exact)"
# Freezes an untrained artifact in both formats, then serves from the
# mmap'd .odz; --check fails the gate unless engine responses are
# bit-identical to direct scoring against the same mapped tables.
cargo run --release --bin odnet -- freeze --out target/ci_artifact
cargo run --release --bin odnet -- serve-bench --artifact target/ci_artifact.odz \
    --workers 2 --requests 1000 --check

echo "==> artifact cold-start smoke (JSON vs owned read vs mmap)"
# Small-universe run of the cold-start experiment: asserts all three load
# paths score bit-identically and mmap beats the JSON parse, without
# touching the committed paper-scale BENCH_artifact.json.
CRITERION_QUICK=1 cargo bench -p od-bench --bench artifact_bench

echo "==> serving bench (smoke)"
CRITERION_QUICK=1 cargo bench -p od-bench --bench serving_bench

echo "==> retrieval equivalence (SIMD top-k bit-exact vs scalar oracle)"
# Property suite: AVX2/NEON kernels visit the exact same pairs as the
# scalar oracle (live-threshold contract), owned == mmap tables, and the
# hot-swap case (index rebuilt from the published generation).
cargo test -q -p od-retrieval

echo "==> pruned recall gate (recall@64 >= 0.99 at >= 5x scan reduction)"
cargo test -q -p od-retrieval --test recall_gate

echo "==> retrieval bench (smoke)"
# Small-universe run of the SIMD/pruned/funnel experiments with the same
# exactness assertions as the full run, without touching the committed
# paper-scale BENCH_retrieval.json (gates there: SIMD >= 2x scalar,
# recall@64 >= 0.99, >= 5x fewer candidates scanned).
CRITERION_QUICK=1 cargo bench -p od-bench --bench retrieval_bench

echo "==> full-funnel smoke (retrieve -> rank through a mmap'd artifact)"
# Drives the retrieval tier + micro-batching ranker end to end; --check
# fails the gate unless every response is full (exactly top-k pairs),
# rank-ordered, and stamped with consistent retrieval/ranking versions.
cargo run --release --bin odnet -- serve-bench --artifact target/ci_artifact.odz \
    --funnel --check --requests 500

echo "==> observability unit + property suites (od-obs)"
cargo test -q -p od-obs

echo "==> Prometheus exposition lint (render -> parse-back reconciliation)"
# Renders a populated registry to text exposition and parses it back,
# asserting bucket monotonicity, label round-trips, and +Inf == _count.
cargo test -q -p od-obs --test exposition

echo "==> throughput smoke (engine vs direct scoring, coalescing engaged)"
# Tiny model, 2 workers, 2k requests; --check fails the gate unless every
# engine response is bit-identical to single-threaded scoring,
# cross-request coalescing merged at least one batch, and the stage clock
# populated the queue-wait / forward / end-to-end histograms. The JSON
# snapshot is written while the engine is live (gauges still set).
cargo run --release --bin odnet -- serve-bench --workers 2 --requests 2000 \
    --check --metrics-json target/metrics_snapshot.json

echo "==> metrics overhead gate (stage clock + request tracing within 3%)"
# Back-to-back on/off pairs for the stage clock, the request-scoped
# tracer (10ms tail threshold, 1-in-64 sampling), and hot-swapping;
# ODNET_OVERHEAD_GATE=1 fails the run unless each best pair is >= 0.97.
CRITERION_QUICK=1 ODNET_OVERHEAD_GATE=1 cargo bench -p od-bench --bench throughput_bench

echo "==> trace capture smoke (tracer on under load, span trees well-formed)"
# serve-bench with the production tracer config; --check fails the gate
# unless traces reached the ring and every captured span tree is
# well-formed (one root, unique ids, children nested in their parent).
cargo run --release --bin odnet -- serve-bench --workers 2 --clients 8 \
    --requests 2000 --trace --check

echo "==> chaos suite (panic isolation, deadlines, supervision, hot swaps)"
# Includes the swap chaos tests: distinct-content generations published
# under 8-thread load with every response checked against the artifact
# version its stamp records, grace-period reclamation (Weak-based), an
# in-flight batch pinned to its generation across a publish, and
# publish-vs-teardown races.
cargo test -q -p od-serve --test chaos

echo "==> fault-injection smoke (3 worker panics under load)"
# Fixed fault seed (batches 3, 7, 11); --check fails the gate unless the
# run survived with zero lost tickets, bit-exact surviving responses, and
# health counters (worker panics, respawns, pool size) reconciling with
# the injected fault count.
cargo run --release --bin odnet -- serve-bench --workers 2 --clients 8 \
    --requests 2000 --inject-panics 3 --check

echo "==> hot-swap smoke (publishes under load, zero lost tickets)"
# A publisher thread hot-swaps a content-identical generation every 250
# completed requests; --check fails the gate unless at least one swap
# landed, the publish history reconciles (health vs load generator vs
# artifact epoch), responses stayed bit-exact across every swap, and no
# ticket was lost.
cargo run --release --bin odnet -- serve-bench --workers 2 --clients 8 \
    --requests 2000 --swap-every 250 --check

echo "==> http parser fuzz table + socket chaos suite (od-http)"
# Strict-parser table tests (truncated lines, bare LFs, smuggling,
# oversized heads/bodies, bad chunked framing -> typed 400/413/431/505,
# never a panic), then the socket suite: half-open connections, slow
# loris, byte-at-a-time writers, mid-body disconnects, connection-cap
# floods, and injected worker panics under 8-client load — zero lost
# responses, 200 bodies bit-exact with in-process scoring, graceful
# drain answering all in-flight work before the listener closes.
cargo test -q -p od-http

echo "==> http serving e2e smoke (freeze -> serve --artifact -> drain)"
# Boots the real HTTP tier over the frozen .odz from the artifact gate
# above and drives every route over a socket: scores bit-exact with
# direct scoring, both funnel stages stamped with the loaded artifact's
# generation, readiness + od_http_* exposition, then a clean drain.
cargo run --release --bin odnet -- serve --artifact target/ci_artifact.odz --smoke

echo "==> online loop smoke (drift -> retrain -> freeze -> publish)"
# Two simulated days through a live engine: serve, fold the click stream
# into training, freeze to .odz, hot-publish, repeat. Exercises the full
# odnet online path end to end.
cargo run --release --bin odnet -- online --rounds 2 --panel 10 --users 40 \
    --cities 12 --out-dir target/ci_online --metrics-jsonl target/ci_online/rounds.jsonl

echo "CI OK"
