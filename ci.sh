#!/usr/bin/env sh
# CI gate: formatting, lints, the full test suite, and a smoke run of the
# serving benchmark (which refreshes BENCH_serving.json at the repo root).
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test -q --workspace

echo "==> frozen-equivalence (serving artifact vs live tape)"
cargo test -q -p odnet-core --test frozen_equivalence

echo "==> serving bench (smoke)"
CRITERION_QUICK=1 cargo bench -p od-bench --bench serving_bench

echo "CI OK"
