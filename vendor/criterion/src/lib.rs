//! Minimal offline benchmark harness with the criterion API surface this
//! workspace uses: [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`black_box`], the `criterion_group!` /
//! `criterion_main!` macros, and a [`Criterion::measurements`] accessor the
//! bench binaries read to emit their own JSON reports.
//!
//! Timing model: after a calibration warmup, each benchmark runs a fixed
//! number of samples; each sample times a batch of iterations sized so one
//! batch is long enough for the monotonic clock to resolve. `mean_ns` /
//! `min_ns` / `max_ns` summarize per-iteration times across samples.
//!
//! `--quick` on the command line or `CRITERION_QUICK=1` in the environment
//! shrinks warmup and sample budgets ~20x for CI smoke runs.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One benchmark's timing summary (nanoseconds per iteration).
#[derive(Clone, Debug)]
pub struct Measurement {
    pub name: String,
    pub mean_ns: f64,
    pub min_ns: f64,
    pub max_ns: f64,
    /// Total timed iterations across all samples.
    pub iters: u64,
}

/// How `iter_batched` amortizes setup; the vendored harness sizes batches
/// by wall-clock regardless, so this is informational.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Benchmark registry and runner.
pub struct Criterion {
    measurements: Vec<Measurement>,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurements: Vec::new(),
            quick: false,
        }
    }
}

impl Criterion {
    /// Honor `--quick` (and ignore the filter/exact args cargo-bench
    /// forwards; the workspace's bench mains run everything).
    pub fn configure_from_args(mut self) -> Self {
        let args: Vec<String> = std::env::args().collect();
        self.quick = args.iter().any(|a| a == "--quick")
            || std::env::var("CRITERION_QUICK")
                .map(|v| v == "1")
                .unwrap_or(false);
        // `cargo test` runs harness=false bench binaries with `--test`;
        // treat that as quick mode so tier-1 stays fast.
        if args.iter().any(|a| a == "--test") {
            self.quick = true;
        }
        self
    }

    /// Force quick mode (used by bench mains that embed their own gating).
    pub fn quick_mode(mut self, quick: bool) -> Self {
        self.quick = quick;
        self
    }

    /// True when running in the reduced-budget mode.
    pub fn is_quick(&self) -> bool {
        self.quick
    }

    /// Run one benchmark and record its summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (warmup, samples, target_sample) = if self.quick {
            (Duration::from_millis(5), 5u32, Duration::from_millis(2))
        } else {
            (Duration::from_millis(100), 20u32, Duration::from_millis(25))
        };

        // Calibration: run single iterations until the warmup budget is
        // spent, estimating the per-iteration cost.
        let calib_start = Instant::now();
        let mut calib_iters: u64 = 0;
        let mut calib_elapsed = Duration::ZERO;
        while calib_elapsed < warmup {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            calib_elapsed = calib_start.elapsed();
            calib_iters += 1;
            if calib_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = calib_elapsed
            .checked_div(calib_iters.max(1) as u32)
            .unwrap_or(Duration::ZERO)
            .max(Duration::from_nanos(1));
        let batch =
            (target_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 100_000_000) as u64;

        let mut total_iters: u64 = 0;
        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples as usize);
        for _ in 0..samples {
            let mut b = Bencher {
                iters: batch,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            total_iters += batch;
            per_iter_ns.push(b.elapsed.as_nanos() as f64 / batch as f64);
        }
        let mean_ns = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
        let min_ns = per_iter_ns.iter().copied().fold(f64::INFINITY, f64::min);
        let max_ns = per_iter_ns.iter().copied().fold(0.0f64, f64::max);
        eprintln!(
            "bench {name:<48} mean {:>12.1} ns/iter  (min {:.1}, max {:.1}, {} iters)",
            mean_ns, min_ns, max_ns, total_iters
        );
        self.measurements.push(Measurement {
            name: name.to_string(),
            mean_ns,
            min_ns,
            max_ns,
            iters: total_iters,
        });
        self
    }

    /// All measurements recorded so far, in execution order.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    /// Print a one-line summary (called by `criterion_main!`).
    pub fn final_summary(&self) {
        eprintln!(
            "criterion: {} benchmark(s) complete{}",
            self.measurements.len(),
            if self.quick { " (quick mode)" } else { "" }
        );
    }
}

/// Per-benchmark timing handle passed to the closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the batch, accumulating only the routine time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Time `routine` over per-iteration inputs built by `setup`; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Cap per-sample input storage; run in chunks when the batch is big.
        const CHUNK: u64 = 4096;
        let mut remaining = self.iters;
        while remaining > 0 {
            let n = remaining.min(CHUNK);
            let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.elapsed += start.elapsed();
            remaining -= n;
        }
    }
}

/// Group benchmark functions: `criterion_group!(benches, f1, f2)` defines
/// `fn benches(c: &mut Criterion)` running each in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Entry point: `criterion_main!(benches)` defines `fn main()`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_measurements() {
        let mut c = Criterion::default().quick_mode(true);
        c.bench_function("spin", |b| b.iter(|| black_box(1 + 1)));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        let ms = c.measurements();
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].name, "spin");
        assert!(ms[0].mean_ns >= 0.0 && ms[0].iters > 0);
        assert!(ms[0].min_ns <= ms[0].mean_ns && ms[0].mean_ns <= ms[0].max_ns);
    }
}
