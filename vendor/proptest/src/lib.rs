//! Minimal offline property-testing harness with the `proptest` API surface
//! this workspace uses: the [`proptest!`] macro (with optional
//! `#![proptest_config(...)]` header), [`Strategy`] over numeric ranges,
//! tuples and mapped strategies, [`collection::vec`], `bool::ANY`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! No shrinking: a failing case reports its deterministic seed and message
//! instead of a minimized input. Seeds derive from the test name and case
//! index, so failures reproduce exactly across runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod bool;
pub mod collection;

/// Runner configuration (`cases` is the only knob the workspace touches).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Bound on `prop_assume!` rejections before the test errors out.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// Assertion failure with a rendered message.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is retried.
    Reject,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

/// A generator of values for one proptest argument.
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform drawn values with a pure function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { strategy: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.strategy.sample(rng))
    }
}

/// A constant strategy (upstream `Just`).
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// FNV-1a over the test name: the deterministic per-test seed root.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drive one property: called by the expansion of [`proptest!`].
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let root = fnv1a(name);
    let mut rejects: u32 = 0;
    let mut index: u32 = 0;
    while index < config.cases {
        let seed = root.wrapping_add(
            (index as u64 + ((rejects as u64) << 32)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let mut rng = StdRng::seed_from_u64(seed);
        match case(&mut rng) {
            Ok(()) => index += 1,
            Err(TestCaseError::Reject) => {
                rejects += 1;
                if rejects > config.max_global_rejects {
                    panic!("proptest `{name}`: too many prop_assume! rejections ({rejects})");
                }
            }
            Err(TestCaseError::Fail(message)) => {
                panic!("proptest `{name}` failed at case {index} (seed {seed:#018x}):\n{message}");
            }
        }
    }
}

/// Everything a proptest file needs via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };

    /// Namespace mirror of upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    { ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    } => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                $crate::run_proptest(&__config, stringify!($name), |__rng| {
                    $(let $pat = $crate::Strategy::sample(&($strategy), __rng);)+
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(__l == __r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u32> {
        0u32..100
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(v in small(), f in 0.25f64..=0.75) {
            prop_assert!(v < 100);
            prop_assert!((0.25..=0.75).contains(&f));
        }

        #[test]
        fn tuples_and_maps(
            (a, b) in (0u8..10, 0u8..10),
            doubled in (0u32..50).prop_map(|x| x * 2),
        ) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(doubled % 2, 0);
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(0u64..5, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn assume_rejects_without_failing(v in 0u32..10) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn bool_any_generates_both(_v in crate::bool::ANY) {
            // Smoke: sampling must not panic; distribution checked below.
        }
    }

    #[test]
    fn bool_any_hits_both_values() {
        use crate::Strategy;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let draws: Vec<bool> = (0..64).map(|_| crate::bool::ANY.sample(&mut rng)).collect();
        assert!(draws.iter().any(|&b| b) && draws.iter().any(|&b| !b));
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_seed() {
        crate::run_proptest(
            &crate::ProptestConfig::with_cases(8),
            "always_fails",
            |_rng| Err(crate::TestCaseError::fail("nope")),
        );
    }
}
