//! `proptest::collection::vec` — vectors with strategy-driven elements and
//! exact, range, or inclusive-range lengths.

use crate::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Length specifications accepted by [`vec`].
pub trait SizeRange: Clone {
    fn sample_len(&self, rng: &mut StdRng) -> usize;
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

impl SizeRange for core::ops::Range<usize> {
    fn sample_len(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl SizeRange for core::ops::RangeInclusive<usize> {
    fn sample_len(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// Strategy producing `Vec<S::Value>` with lengths drawn from `size`.
#[derive(Clone, Debug)]
pub struct VecStrategy<S, Z> {
    element: S,
    size: Z,
}

impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let len = self.size.sample_len(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// A vector strategy: `vec(0u64..5, 1..200)`.
pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
    VecStrategy { element, size }
}
