//! `proptest::bool::ANY` — a fair coin strategy.

use crate::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Strategy type of [`ANY`].
#[derive(Clone, Copy, Debug)]
pub struct Any;

/// Uniform boolean strategy.
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;
    fn sample(&self, rng: &mut StdRng) -> bool {
        rng.gen()
    }
}
