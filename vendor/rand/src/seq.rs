//! Slice sampling helpers (`shuffle`, `choose`).

use crate::RngCore;

/// Uniform u64 in `[0, span)`; mirrors `crate::uniform_below` but local to
/// keep the public crate surface identical to upstream.
#[inline]
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(span as u128);
        let lo = m as u64;
        if lo >= span || lo >= (u64::MAX - span + 1) % span {
            return (m >> 64) as u64;
        }
    }
}

/// Extension trait for random slice operations.
pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly pick one element (None for empty slices).
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = below(rng, (i + 1) as u64) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[below(rng, self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle moved something");
    }

    #[test]
    fn choose_in_bounds_and_empty() {
        let mut rng = StdRng::seed_from_u64(12);
        let v = [10, 20, 30];
        for _ in 0..50 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
