//! Concrete generators: xoshiro256++ behind the [`StdRng`] / [`SmallRng`]
//! names the workspace imports.

use crate::{RngCore, SeedableRng};

/// xoshiro256++ state, seeded via SplitMix64 so that every 64-bit seed
/// yields a well-mixed, non-degenerate state.
#[derive(Clone, Debug)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Xoshiro256PlusPlus {
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256PlusPlus { s }
    }
}

impl RngCore for Xoshiro256PlusPlus {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    fn seed_from_u64(state: u64) -> Self {
        Xoshiro256PlusPlus::new(state)
    }
}

/// The workspace's default deterministic generator.
pub type StdRng = Xoshiro256PlusPlus;

/// Small/fast generator; same algorithm here, the distinction only matters
/// for upstream `rand`.
#[cfg(feature = "small_rng")]
pub type SmallRng = Xoshiro256PlusPlus;
