//! Minimal, dependency-free reimplementation of the subset of the `rand`
//! crate API this workspace uses: [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`]/[`rngs::SmallRng`], and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast, high
//! quality, and deterministic across platforms. It is **not** the same
//! stream as upstream `rand`'s StdRng (ChaCha12); all seeds in this
//! workspace are self-consistent, nothing depends on upstream streams.

pub mod rngs;
pub mod seq;

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the "standard" distribution of `T`:
    /// floats uniform in `[0, 1)`, integers uniform over their full range,
    /// bools as a fair coin.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`).
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable by [`Rng::gen`].
pub trait StandardSample: Sized {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1) with full f32 mantissa resolution.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for f64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform u64 in `[0, span)` via Lemire's widening-multiply method
/// (with rejection to remove bias).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(span as u128);
        let lo = m as u64;
        if lo >= span || lo >= (u64::MAX - span + 1) % span {
            return (m >> 64) as u64;
        }
    }
}

/// Types with a uniform-range sampler; mirrors upstream's `SampleUniform`.
///
/// [`SampleRange`] is implemented ONLY via the two blanket impls below
/// (`Range<T>` / `RangeInclusive<T>` where `T: SampleUniform`), exactly like
/// upstream rand. This matters for inference: with a single applicable impl,
/// `rng.gen_range(0..5)` unifies the output type with the literal's integer
/// variable *eagerly*, so a surrounding slice index pins both to `usize`
/// (and `f32 * rng.gen_range(0.5..1.0)` pins floats to `f32`) before
/// i32/f64 fallback would kick in. Per-type impls would break those sites.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive == false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_uniform(rng, lo, hi, true)
    }
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t, inclusive: bool) -> $t {
                let span = (hi - lo) as u64;
                if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + uniform_below(rng, span + 1) as $t
                } else {
                    lo + uniform_below(rng, span) as $t
                }
            }
        }
    )*};
}
impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t, inclusive: bool) -> $t {
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i64).wrapping_add(uniform_below(rng, span + 1) as i64) as $t
                } else {
                    (lo as i64).wrapping_add(uniform_below(rng, span) as i64) as $t
                }
            }
        }
    )*};
}
impl_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t, _inclusive: bool) -> $t {
                let u = <$t as StandardSample>::standard_sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.gen_range(0..5usize);
            seen[v] = true;
            let w = rng.gen_range(2..=4u32);
            assert!((2..=4).contains(&w));
            let f = rng.gen_range(-1.0..1.0f32);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-10..10i64);
            assert!((-10..10).contains(&i));
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn gen_bool_edges() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
