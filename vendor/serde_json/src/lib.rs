//! Minimal JSON encoder/decoder over the vendored serde [`Content`] tree.
//!
//! Encoding rules (match upstream serde_json where the workspace can
//! observe them):
//! - floats print via Rust's shortest round-trip `Display`, so an
//!   `f32 → JSON → f32` trip is bit-exact (the intermediate f64 parse
//!   cannot double-round: 53 mantissa bits > 2·24 + 2);
//! - non-finite floats encode as `null`;
//! - strings escape `"`/`\\` and control characters.
//!
//! Decoding specializes large all-numeric arrays into the packed
//! [`Content::Floats`] variant (one `Vec<f64>` instead of one enum node per
//! element) so multi-GB embedding checkpoints parse in O(data) memory, not
//! O(30× data). Integers that exceed 2⁵³ fall back to exact typed nodes.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// Re-export: the dynamic JSON value is just the serde content tree
/// (`get`, `as_array`, `as_str`, `as_f64`, … are inherent methods).
pub use serde::Content as Value;

/// JSON encode/decode error with a byte offset where available.
#[derive(Clone, Debug)]
pub struct Error {
    message: String,
    pos: Option<usize>,
}

impl Error {
    fn at(message: impl Into<String>, pos: usize) -> Self {
        Error {
            message: message.into(),
            pos: Some(pos),
        }
    }

    fn msg(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
            pos: None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some(pos) => write!(f, "{} at byte {pos}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::msg(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        use std::fmt::Write;
        let _ = write!(out, "{v}");
        // `Display` omits the decimal point for integral floats; that is
        // still a valid JSON number and parses back to the same value.
    } else {
        out.push_str("null");
    }
}

fn write_f32(out: &mut String, v: f32) {
    if v.is_finite() {
        use std::fmt::Write;
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn encode_into(out: &mut String, content: &Content, indent: Option<usize>) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => {
            use std::fmt::Write;
            let _ = write!(out, "{v}");
        }
        Content::I64(v) => {
            use std::fmt::Write;
            let _ = write!(out, "{v}");
        }
        Content::F64(v) => write_f64(out, *v),
        Content::F32(v) => write_f32(out, *v),
        Content::Str(s) => escape_into(out, s),
        Content::Seq(items) => {
            encode_seq(out, items.len(), indent, |out, i, ind| {
                encode_into(out, &items[i], ind)
            });
        }
        Content::Floats(values) => {
            encode_seq(out, values.len(), indent, |out, i, _| {
                write_f64(out, values[i])
            });
        }
        Content::F32s(values) => {
            encode_seq(out, values.len(), indent, |out, i, _| {
                write_f32(out, values[i])
            });
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            let inner = indent.map(|n| n + 1);
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, inner);
                escape_into(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                encode_into(out, value, inner);
            }
            newline_indent(out, indent);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n {
            out.push_str("  ");
        }
    }
}

fn encode_seq(
    out: &mut String,
    len: usize,
    indent: Option<usize>,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    if len == 0 {
        out.push_str("[]");
        return;
    }
    out.push('[');
    let inner = indent.map(|n| n + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, inner);
        item(out, i, inner);
    }
    newline_indent(out, indent);
    out.push(']');
}

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let content = value.to_content();
    let mut out = String::new();
    encode_into(&mut out, &content, None);
    Ok(out)
}

/// Serialize a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let content = value.to_content();
    let mut out = String::new();
    encode_into(&mut out, &content, Some(0));
    Ok(out)
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Arrays at least this long whose elements are all numbers collapse into
/// the packed `Content::Floats` representation.
const PACK_THRESHOLD: usize = 64;

/// Largest integer magnitude exactly representable in f64.
const EXACT_INT: f64 = 9_007_199_254_740_992.0; // 2^53

/// Nesting depth limit: corrupt or adversarial inputs must error, not
/// overflow the stack.
const MAX_DEPTH: usize = 192;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

#[derive(Clone, Copy)]
enum Number {
    U64(u64),
    I64(i64),
    F64(f64),
}

impl Number {
    fn to_content(self) -> Content {
        match self {
            Number::U64(v) => Content::U64(v),
            Number::I64(v) => Content::I64(v),
            Number::F64(v) => Content::F64(v),
        }
    }

    /// The f64 view when it is exact (always for parsed f64 tokens; for
    /// integer tokens only below 2^53).
    fn as_exact_f64(self) -> Option<f64> {
        match self {
            Number::U64(v) => {
                let f = v as f64;
                (f.abs() <= EXACT_INT).then_some(f)
            }
            Number::I64(v) => {
                let f = v as f64;
                (f.abs() <= EXACT_INT).then_some(f)
            }
            Number::F64(v) => Some(v),
        }
    }
}

impl<'a> Parser<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Parser { bytes, pos: 0 }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::at(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Content, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::at("nesting too deep", self.pos));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Content::Bool(true)),
            Some(b'f') => self.parse_literal("false", Content::Bool(false)),
            Some(b'n') => self.parse_literal("null", Content::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => Ok(self.parse_number()?.to_content()),
            Some(b) => Err(Error::at(
                format!("unexpected byte `{}`", b as char),
                self.pos,
            )),
            None => Err(Error::at("unexpected end of input", self.pos)),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::at(format!("expected `{lit}`"), self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<Number, Error> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::at("invalid number", start))?;
        if token.is_empty() {
            return Err(Error::at("expected number", start));
        }
        if !is_float {
            if let Some(stripped) = token.strip_prefix('-') {
                if let Ok(v) = stripped.parse::<u64>() {
                    if v <= i64::MAX as u64 {
                        return Ok(Number::I64(-(v as i64)));
                    }
                }
            } else if let Ok(v) = token.parse::<u64>() {
                return Ok(Number::U64(v));
            }
            // Integer too large for 64 bits: keep the f64 approximation.
        }
        token
            .parse::<f64>()
            .map(Number::F64)
            .map_err(|_| Error::at(format!("invalid number `{token}`"), start))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        // Fast path: copy unescaped ASCII/UTF-8 runs wholesale.
        loop {
            let run_start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[run_start..self.pos])
                    .map_err(|_| Error::at("invalid utf-8 in string", run_start))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::at("unterminated escape", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::at("invalid surrogate pair", self.pos));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(
                                c.ok_or_else(|| Error::at("invalid unicode escape", self.pos))?,
                            );
                        }
                        other => {
                            return Err(Error::at(
                                format!("invalid escape `\\{}`", other as char),
                                self.pos - 1,
                            ))
                        }
                    }
                }
                Some(_) => return Err(Error::at("control character in string", self.pos)),
                None => return Err(Error::at("unterminated string", self.pos)),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::at("truncated \\u escape", self.pos))?;
        let s = std::str::from_utf8(slice).map_err(|_| Error::at("bad \\u escape", self.pos))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::at("bad \\u escape", self.pos))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_array(&mut self, depth: usize) -> Result<Content, Error> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(Vec::new()));
        }
        // Fast path: accumulate a numeric prefix as packed f64s.
        let mut packed: Vec<f64> = Vec::new();
        loop {
            self.skip_ws();
            let is_number = matches!(self.peek(), Some(b) if b == b'-' || b.is_ascii_digit());
            if !is_number {
                return self.parse_array_general(depth, packed);
            }
            let num = self.parse_number()?;
            match num.as_exact_f64() {
                Some(f) => packed.push(f),
                // A >2^53 integer: preserve it exactly via typed nodes.
                None => {
                    let mut items: Vec<Content> = packed.into_iter().map(Content::F64).collect();
                    items.push(num.to_content());
                    return self.parse_array_tail(depth, items);
                }
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(if packed.len() >= PACK_THRESHOLD {
                        Content::Floats(packed)
                    } else {
                        Content::Seq(packed.into_iter().map(Content::F64).collect())
                    });
                }
                _ => return Err(Error::at("expected `,` or `]`", self.pos)),
            }
        }
    }

    /// Continue an array whose next element is not a number.
    fn parse_array_general(&mut self, depth: usize, packed: Vec<f64>) -> Result<Content, Error> {
        let items: Vec<Content> = packed.into_iter().map(Content::F64).collect();
        let mut items = items;
        items.push(self.parse_value(depth + 1)?);
        self.parse_array_tail(depth, items)
    }

    /// Parse remaining elements generically after the packed fast path
    /// bailed; `items` already holds everything parsed so far.
    fn parse_array_tail(
        &mut self,
        depth: usize,
        mut items: Vec<Content>,
    ) -> Result<Content, Error> {
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    items.push(self.parse_value(depth + 1)?);
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error::at("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries: Vec<(String, Content)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(Error::at("expected `,` or `}`", self.pos)),
            }
        }
    }
}

/// Parse JSON text into the content tree.
pub fn parse_content(s: &str) -> Result<Content, Error> {
    let mut parser = Parser::new(s.as_bytes());
    let value = parser.parse_value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::at("trailing characters", parser.pos));
    }
    Ok(value)
}

/// Deserialize a typed value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let content = parse_content(s)?;
    T::from_content(&content).map_err(Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f32).unwrap(), "1.5");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("-2.5e3").unwrap(), -2500.0);
        assert_eq!(from_str::<bool>(" false ").unwrap(), false);
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn f32_bit_exact_round_trip() {
        let mut x = 0x0000_0001u32;
        // Walk a spread of bit patterns including subnormals and extremes.
        for _ in 0..64 {
            let v = f32::from_bits(x);
            if v.is_finite() {
                let json = to_string(&v).unwrap();
                let back: f32 = from_str(&json).unwrap();
                assert_eq!(back.to_bits(), v.to_bits(), "pattern {x:#010x} -> {json}");
            }
            x = x.wrapping_mul(0x9E37_79B9).wrapping_add(12345);
        }
        for v in [0.0f32, -0.0, 1.0, 0.1, f32::MIN_POSITIVE, f32::MAX, 1e-40] {
            let back: f32 = from_str(&to_string(&v).unwrap()).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn overflowing_exponent_parses_to_infinity() {
        assert_eq!(from_str::<f64>("1e999").unwrap(), f64::INFINITY);
        assert_eq!(from_str::<f32>("1e999").unwrap(), f32::INFINITY);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\te\u{1F600}";
        let json = to_string(&String::from(s)).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>(r#""A😀""#).unwrap(), "A😀");
    }

    #[test]
    fn arrays_pack_above_threshold() {
        let big: Vec<f32> = (0..100).map(|i| i as f32 * 0.5).collect();
        let json = to_string(&big).unwrap();
        let content = parse_content(&json).unwrap();
        assert!(matches!(content, Content::Floats(_)), "large array packs");
        assert_eq!(from_str::<Vec<f32>>(&json).unwrap(), big);

        let small = vec![1u32, 2, 3];
        let content = parse_content(&to_string(&small).unwrap()).unwrap();
        assert!(
            matches!(content, Content::Seq(_)),
            "small array stays general"
        );
        assert_eq!(from_str::<Vec<u32>>("[1,2,3]").unwrap(), small);
    }

    #[test]
    fn huge_integers_stay_exact() {
        let vals: Vec<u64> = (0..70).map(|i| u64::MAX - i).collect();
        let json = to_string(&vals).unwrap();
        assert_eq!(from_str::<Vec<u64>>(&json).unwrap(), vals);
    }

    #[test]
    fn mixed_arrays_fall_back() {
        let json = r#"[1, "two", 3.5]"#;
        let content = parse_content(json).unwrap();
        let items = content.as_seq().unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[1].as_str(), Some("two"));
    }

    #[test]
    fn object_round_trip_and_value_accessors() {
        let json = r#"{"name": "odnet", "auc": 0.93, "tags": [1, 2]}"#;
        let v: Value = from_str(json).unwrap();
        assert_eq!(v.get("name").and_then(Value::as_str), Some("odnet"));
        assert_eq!(v.get("auc").and_then(Value::as_f64), Some(0.93));
        assert_eq!(
            v.get("tags").and_then(Value::as_array).map(|a| a.len()),
            Some(2)
        );
        let rendered = to_string(&v).unwrap();
        let reparsed: Value = from_str(&rendered).unwrap();
        assert_eq!(reparsed, v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Value = from_str(r#"{"a": [1, 2], "b": {"c": null}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,").is_err());
        assert!(from_str::<Value>(r#"{"a" 1}"#).is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("[1] trailing").is_err());
        assert!(from_str::<Value>(&("[".repeat(500) + &"]".repeat(500))).is_err());
    }

    #[test]
    fn non_finite_floats_encode_as_null() {
        assert_eq!(to_string(&f32::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }
}
