//! Minimal shim exposing the `crossbeam::thread::scope` API this workspace
//! uses, implemented over `std::thread::scope` (stabilized long after
//! crossbeam introduced the pattern, with the same soundness guarantees).

pub mod thread {
    use std::any::Any;

    /// Scope handle passed to [`scope`]'s closure and to each spawned
    /// thread's closure (crossbeam passes the scope so workers can spawn
    /// nested workers; the workspace ignores that argument).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Join handle for a scoped worker.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the worker, returning `Err` with the panic payload if
        /// it panicked.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a worker inside the scope. The closure receives the scope
        /// (ignored throughout this workspace: `move |_| …`).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Run `f` with a scope; every spawned worker is joined before this
    /// returns. Unlike crossbeam, an unjoined worker panic propagates as a
    /// panic rather than `Err` — all call sites `.expect()` the result, so
    /// the observable behavior (abort the caller) is identical.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = vec![1u32, 2, 3, 4];
        let total = crate::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| scope.spawn(move |_| c.iter().sum::<u32>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .sum::<u32>()
        })
        .expect("scope");
        assert_eq!(total, 10);
    }

    #[test]
    fn worker_panic_surfaces_at_join() {
        let result = crate::thread::scope(|scope| {
            let h = scope.spawn(|_| panic!("boom"));
            h.join().is_err()
        })
        .expect("scope");
        assert!(result);
    }
}
