//! Minimal offline serde.
//!
//! Instead of upstream serde's visitor architecture, this vendored variant
//! round-trips every value through a self-describing [`Content`] tree:
//!
//! - [`Serialize`] renders a value into a `Content`;
//! - [`Deserialize`] rebuilds a value from a borrowed `Content`;
//! - `serde_json` is then just `Content` ⇄ text.
//!
//! The derive macro (feature `derive`, crate `serde_derive`) generates both
//! impls for structs and enums using upstream's *externally tagged* JSON
//! conventions, so documents written by real serde with default attributes
//! parse identically here:
//!
//! - named struct → map of fields (`#[serde(skip)]` supported);
//! - newtype struct → the inner value, transparent;
//! - tuple struct → sequence;
//! - unit enum variant → `"VariantName"`;
//! - 1-field tuple variant → `{"VariantName": value}`;
//! - n-field tuple variant → `{"VariantName": [v0, …, vn]}`.
//!
//! Two non-upstream `Content` variants, [`Content::Floats`] and
//! [`Content::F32s`], hold all-numeric arrays as packed vectors instead of
//! one node per element. The JSON parser collapses large numeric arrays
//! into `Floats`, and `Tensor` serializes its buffer as `F32s` — together
//! they keep multi-hundred-MB embedding-table checkpoints from exploding
//! into tens of GB of enum nodes. Textually they are ordinary JSON arrays.

use std::collections::HashMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Self-describing value tree — the interchange format between typed values
/// and concrete encodings such as JSON.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    F32(f32),
    Str(String),
    Seq(Vec<Content>),
    /// Packed all-numeric array (parser-produced for large arrays).
    Floats(Vec<f64>),
    /// Packed f32 array (producer-side fast path for tensor buffers).
    F32s(Vec<f32>),
    /// Key–value map with insertion order preserved.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Borrow the entries when this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrow the elements when this is a general sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow the string when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view when this is any number variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::U64(v) => Some(v as f64),
            Content::I64(v) => Some(v as f64),
            Content::F64(v) => Some(v),
            Content::F32(v) => Some(v as f64),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Content::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Map-field lookup by key (linear scan; checkpoint maps are small).
    pub fn get_field<'a>(map: &'a [(String, Content)], name: &str) -> Option<&'a Content> {
        map.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Map-field lookup on a `Content::Map` value (`serde_json::Value::get`).
    pub fn get(&self, name: &str) -> Option<&Content> {
        Content::get_field(self.as_map()?, name)
    }

    /// Sequence view as a general `Vec<Content>`-like slice; packed numeric
    /// arrays do not satisfy this (callers wanting numbers should use typed
    /// deserialization instead).
    pub fn as_array(&self) -> Option<&[Content]> {
        self.as_seq()
    }

    /// Human label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) | Content::F64(_) | Content::F32(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) | Content::Floats(_) | Content::F32s(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Render `self` into a [`Content`] tree.
pub trait Serialize {
    fn to_content(&self) -> Content;
}

/// Rebuild `Self` from a borrowed [`Content`] tree.
pub trait Deserialize: Sized {
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

/// Typed deserialization error: what was expected, while building which type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// `expected("map", "Checkpoint")` → "expected map while deserializing Checkpoint".
    pub fn expected(what: &str, ty: &str) -> Self {
        DeError {
            message: format!("expected {what} while deserializing {ty}"),
        }
    }

    /// A required field was absent.
    pub fn missing_field(name: &str, ty: &str) -> Self {
        DeError {
            message: format!("missing field `{name}` while deserializing {ty}"),
        }
    }

    /// Free-form error.
    pub fn custom(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(content.clone())
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_bool()
            .ok_or_else(|| DeError::expected("bool", "bool"))
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let v: u64 = match *content {
                    Content::U64(v) => v,
                    Content::I64(v) if v >= 0 => v as u64,
                    // Integral floats appear when a large numeric array was
                    // packed into `Content::Floats`.
                    Content::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                        f as u64
                    }
                    _ => return Err(DeError::expected("unsigned integer", stringify!($t))),
                };
                <$t>::try_from(v)
                    .map_err(|_| DeError::expected("in-range unsigned integer", stringify!($t)))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let v: i64 = match *content {
                    Content::I64(v) => v,
                    Content::U64(v) if v <= i64::MAX as u64 => v as i64,
                    Content::F64(f)
                        if f.fract() == 0.0
                            && f >= i64::MIN as f64
                            && f <= i64::MAX as f64 =>
                    {
                        f as i64
                    }
                    _ => return Err(DeError::expected("integer", stringify!($t))),
                };
                <$t>::try_from(v)
                    .map_err(|_| DeError::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F32(*self)
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match *content {
            Content::F32(v) => Ok(v),
            // f64 -> f32 via a single rounding; JSON numbers parsed as f64
            // from the shortest f32 representation recover the exact f32.
            Content::F64(v) => Ok(v as f32),
            Content::U64(v) => Ok(v as f32),
            Content::I64(v) => Ok(v as f32),
            _ => Err(DeError::expected("number", "f32")),
        }
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_f64()
            .ok_or_else(|| DeError::expected("number", "f64"))
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string", "String"))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        T::from_content(content).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            // Packed numeric arrays: rebuild each element through a
            // stack-allocated F64 node (no per-element heap traffic).
            Content::Floats(values) => values
                .iter()
                .map(|&v| T::from_content(&Content::F64(v)))
                .collect(),
            Content::F32s(values) => values
                .iter()
                .map(|&v| T::from_content(&Content::F32(v)))
                .collect(),
            _ => Err(DeError::expected("sequence", "Vec")),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_content(content)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError::custom(format!("expected array of length {N}, found {len}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                const ARITY: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = content
                    .as_seq()
                    .ok_or_else(|| DeError::expected("sequence", "tuple"))?;
                if items.len() != ARITY {
                    return Err(DeError::custom(format!(
                        "expected tuple of {ARITY} elements, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_content(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_content(&self) -> Content {
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let entries = content
            .as_map()
            .ok_or_else(|| DeError::expected("map", "HashMap"))?;
        entries
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_round_trips() {
        assert_eq!(u32::from_content(&42u32.to_content()), Ok(42));
        assert_eq!(i64::from_content(&(-7i64).to_content()), Ok(-7));
        assert_eq!(f32::from_content(&1.5f32.to_content()), Ok(1.5));
        assert_eq!(u32::from_content(&Content::F64(3.0)), Ok(3));
        assert!(u32::from_content(&Content::F64(3.5)).is_err());
        assert!(u8::from_content(&Content::U64(300)).is_err());
    }

    #[test]
    fn option_null_mapping() {
        assert_eq!(Option::<u32>::from_content(&Content::Null), Ok(None));
        assert_eq!(Option::<u32>::from_content(&Content::U64(1)), Ok(Some(1)));
        assert_eq!(Serialize::to_content(&Option::<u32>::None), Content::Null);
    }

    #[test]
    fn packed_arrays_deserialize_like_seqs() {
        let packed = Content::Floats(vec![1.0, 2.0, 3.0]);
        assert_eq!(Vec::<f32>::from_content(&packed), Ok(vec![1.0, 2.0, 3.0]));
        assert_eq!(Vec::<u32>::from_content(&packed), Ok(vec![1, 2, 3]));
        let packed32 = Content::F32s(vec![0.5, -0.5]);
        assert_eq!(Vec::<f32>::from_content(&packed32), Ok(vec![0.5, -0.5]));
    }

    #[test]
    fn tuples_and_arrays() {
        let t = (1u32, 2.5f32);
        let c = t.to_content();
        assert_eq!(<(u32, f32)>::from_content(&c), Ok(t));
        let a = [1.0f32, 2.0, 3.0];
        assert_eq!(<[f32; 3]>::from_content(&a.to_content()), Ok(a));
        assert!(<[f32; 4]>::from_content(&a.to_content()).is_err());
    }

    #[test]
    fn map_field_lookup() {
        let m = Content::Map(vec![
            ("a".into(), Content::U64(1)),
            ("b".into(), Content::Str("x".into())),
        ]);
        let entries = m.as_map().unwrap();
        assert_eq!(Content::get_field(entries, "a"), Some(&Content::U64(1)));
        assert_eq!(Content::get_field(entries, "z"), None);
        assert_eq!(m.get("b").and_then(Content::as_str), Some("x"));
    }
}
