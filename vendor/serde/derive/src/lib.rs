//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! minimal serde.
//!
//! Implemented directly over `proc_macro::TokenStream` (no syn/quote in the
//! offline vendor set): a small walker classifies the input as a named
//! struct, tuple struct, or enum of unit/tuple variants, honouring
//! `#[serde(skip)]` on named fields, then emits the impl as source text.
//! Generated code follows upstream serde's externally-tagged conventions —
//! see the `serde` crate docs for the mapping.
//!
//! Unsupported shapes (generics, struct variants, other `#[serde]`
//! attributes) panic at expansion time with a clear message rather than
//! generating subtly wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
}

#[derive(Debug)]
struct Variant {
    name: String,
    arity: usize,
}

#[derive(Debug)]
enum Input {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Does an attribute token pair (`#` + bracket group) carry `serde(skip)`?
/// Panics on any other `#[serde(...)]` content: silently ignoring an
/// attribute this vendored derive does not implement would change wire
/// formats without warning.
fn attr_is_serde_skip(group: &proc_macro::Group) -> bool {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(ident)) if ident.to_string() == "serde" => {}
        _ => return false,
    }
    let args = match tokens.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => panic!("malformed #[serde] attribute"),
    };
    let names: Vec<String> = args
        .into_iter()
        .filter_map(|t| match t {
            TokenTree::Ident(i) => Some(i.to_string()),
            _ => None,
        })
        .collect();
    if names == ["skip"] {
        return true;
    }
    panic!(
        "vendored serde derive supports only #[serde(skip)], found #[serde({})]",
        names.join(", ")
    );
}

/// Skip attributes at `tokens[i..]`, returning the new index and whether a
/// `#[serde(skip)]` was among them.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut skip = false;
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                skip |= attr_is_serde_skip(g);
                i += 2;
            }
            _ => break,
        }
    }
    (i, skip)
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, `pub(in …)`).
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(ident)) = tokens.get(i) {
        if ident.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Count top-level comma-separated items in a field/type list, tracking
/// `<…>` depth so `HashMap<String, ParamId>` counts as one item. Groups
/// (parens/brackets/braces) are single trees, so tuple and array types need
/// no special handling.
fn count_top_level_items(stream: TokenStream) -> usize {
    let mut items = 0;
    let mut saw_token = false;
    let mut angle = 0i32;
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if saw_token {
                    items += 1;
                    saw_token = false;
                }
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    items + usize::from(saw_token)
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (j, skip) = skip_attrs(&tokens, i);
        let j = skip_vis(&tokens, j);
        let name = match tokens.get(j) {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            None => break,
            Some(other) => panic!("expected field name, found {other}"),
        };
        let mut k = j + 1;
        match tokens.get(k) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => k += 1,
            _ => panic!("expected `:` after field `{name}`"),
        }
        // Consume the type: everything up to a top-level comma.
        let mut angle = 0i32;
        while let Some(tok) = tokens.get(k) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    k += 1;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        fields.push(Field { name, skip });
        i = k;
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (j, _) = skip_attrs(&tokens, i);
        if j >= tokens.len() {
            break;
        }
        let name = match &tokens[j] {
            TokenTree::Ident(ident) => ident.to_string(),
            other => panic!("expected variant name, found {other}"),
        };
        let mut k = j + 1;
        let mut arity = 0;
        match tokens.get(k) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                arity = count_top_level_items(g.stream());
                k += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                panic!("vendored serde derive does not support struct variant `{name}`")
            }
            _ => {}
        }
        match tokens.get(k) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => k += 1,
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                panic!("vendored serde derive does not support explicit discriminants")
            }
            Some(other) => panic!("unexpected token after variant `{name}`: {other}"),
        }
        variants.push(Variant { name, arity });
        i = k;
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, _) = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    let name = match tokens.get(i + 1) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.get(i + 2) {
        if p.as_char() == '<' {
            panic!("vendored serde derive does not support generic type `{name}`");
        }
    }
    match kind.as_str() {
        "struct" => match tokens.get(i + 2) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Input::TupleStruct {
                    name,
                    arity: count_top_level_items(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Input::UnitStruct { name },
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i + 2) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("cannot derive serde impls for `{other}` items"),
    }
}

fn gen_serialize(input: &Input) -> String {
    let mut out = String::new();
    match input {
        Input::NamedStruct { name, fields } => {
            let mut entries = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                entries.push_str(&format!(
                    "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_content(&self.{0})),",
                    f.name
                ));
            }
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> ::serde::Content {{\n\
                 ::serde::Content::Map(::std::vec::Vec::from([{entries}]))\n\
                 }}\n}}\n"
            ));
        }
        Input::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::to_content(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                    .collect();
                format!(
                    "::serde::Content::Seq(::std::vec::Vec::from([{}]))",
                    items.join(",")
                )
            };
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> ::serde::Content {{ {body} }}\n}}\n"
            ));
        }
        Input::UnitStruct { name } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> ::serde::Content {{ ::serde::Content::Null }}\n}}\n"
            ));
        }
        Input::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match v.arity {
                    0 => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Content::Str(::std::string::String::from(\"{vname}\")),\n"
                    )),
                    1 => arms.push_str(&format!(
                        "{name}::{vname}(f0) => ::serde::Content::Map(::std::vec::Vec::from([\
                         (::std::string::String::from(\"{vname}\"), ::serde::Serialize::to_content(f0))])),\n"
                    )),
                    n => {
                        let binds: Vec<String> = (0..n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_content({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Content::Map(::std::vec::Vec::from([\
                             (::std::string::String::from(\"{vname}\"), \
                             ::serde::Content::Seq(::std::vec::Vec::from([{}])))])),\n",
                            binds.join(","),
                            items.join(",")
                        ));
                    }
                }
            }
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> ::serde::Content {{\n\
                 match self {{\n{arms}}}\n}}\n}}\n"
            ));
        }
    }
    out
}

fn gen_deserialize(input: &Input) -> String {
    let mut out = String::new();
    match input {
        Input::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{}: ::core::default::Default::default(),\n",
                        f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{0}: match ::serde::Content::get_field(__map, \"{0}\") {{\n\
                         Some(v) => ::serde::Deserialize::from_content(v)?,\n\
                         None => return ::core::result::Result::Err(\
                         ::serde::DeError::missing_field(\"{0}\", \"{name}\")),\n\
                         }},\n",
                        f.name
                    ));
                }
            }
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_content(content: &::serde::Content) -> \
                 ::core::result::Result<Self, ::serde::DeError> {{\n\
                 let __map = content.as_map().ok_or_else(|| \
                 ::serde::DeError::expected(\"map\", \"{name}\"))?;\n\
                 ::core::result::Result::Ok({name} {{\n{inits}}})\n}}\n}}\n"
            ));
        }
        Input::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!(
                    "::core::result::Result::Ok({name}(::serde::Deserialize::from_content(content)?))"
                )
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_content(&__items[{i}])?"))
                    .collect();
                format!(
                    "let __items = content.as_seq().ok_or_else(|| \
                     ::serde::DeError::expected(\"sequence\", \"{name}\"))?;\n\
                     if __items.len() != {arity} {{\n\
                     return ::core::result::Result::Err(::serde::DeError::expected(\
                     \"sequence of {arity} elements\", \"{name}\"));\n}}\n\
                     ::core::result::Result::Ok({name}({}))",
                    items.join(",")
                )
            };
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_content(content: &::serde::Content) -> \
                 ::core::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
            ));
        }
        Input::UnitStruct { name } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_content(content: &::serde::Content) -> \
                 ::core::result::Result<Self, ::serde::DeError> {{\n\
                 match content {{\n\
                 ::serde::Content::Null => ::core::result::Result::Ok({name}),\n\
                 _ => ::core::result::Result::Err(::serde::DeError::expected(\"null\", \"{name}\")),\n\
                 }}\n}}\n}}\n"
            ));
        }
        Input::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut keyed_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match v.arity {
                    0 => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}),\n"
                    )),
                    1 => keyed_arms.push_str(&format!(
                        "\"{vname}\" => ::core::result::Result::Ok(\
                         {name}::{vname}(::serde::Deserialize::from_content(__value)?)),\n"
                    )),
                    n => {
                        let items: Vec<String> = (0..n)
                            .map(|i| format!("::serde::Deserialize::from_content(&__items[{i}])?"))
                            .collect();
                        keyed_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let __items = __value.as_seq().ok_or_else(|| \
                             ::serde::DeError::expected(\"sequence\", \"{name}::{vname}\"))?;\n\
                             if __items.len() != {n} {{\n\
                             return ::core::result::Result::Err(::serde::DeError::expected(\
                             \"sequence of {n} elements\", \"{name}::{vname}\"));\n}}\n\
                             ::core::result::Result::Ok({name}::{vname}({}))\n}},\n",
                            items.join(",")
                        ));
                    }
                }
            }
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_content(content: &::serde::Content) -> \
                 ::core::result::Result<Self, ::serde::DeError> {{\n\
                 match content {{\n\
                 ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::core::result::Result::Err(::serde::DeError::custom(\
                 format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }},\n\
                 ::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__key, __value) = &__entries[0];\n\
                 match __key.as_str() {{\n\
                 {keyed_arms}\
                 __other => ::core::result::Result::Err(::serde::DeError::custom(\
                 format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }}\n\
                 }},\n\
                 _ => ::core::result::Result::Err(::serde::DeError::expected(\
                 \"variant string or single-entry map\", \"{name}\")),\n\
                 }}\n}}\n}}\n"
            ));
        }
    }
    out
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde_derive generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde_derive generated invalid Deserialize impl")
}
