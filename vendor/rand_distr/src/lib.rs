//! Minimal reimplementation of the `rand_distr` distributions this
//! workspace uses: [`Normal`] (Box–Muller), [`Uniform`], and [`Gumbel`],
//! generic over `f32`/`f64`.

use rand::{RngCore, StandardSample};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Float abstraction so each distribution works for `f32` and `f64`.
pub trait Float: Copy + PartialOrd {
    fn from_f64(v: f64) -> Self;
    fn to_f64(self) -> f64;
    fn is_finite_f(self) -> bool;
}

impl Float for f32 {
    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn is_finite_f(self) -> bool {
        self.is_finite()
    }
}

impl Float for f64 {
    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn is_finite_f(self) -> bool {
        self.is_finite()
    }
}

/// Uniform f64 in the open interval `(0, 1)` — safe for `ln`.
#[inline]
fn open01<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // [0,1) shifted away from zero by half an ulp of the 53-bit lattice.
    f64::standard_sample(rng) + f64::EPSILON / 2.0
}

/// Error constructing a distribution from invalid parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DistError {
    /// Scale parameter (σ, β, …) was negative, NaN, or infinite.
    BadScale,
    /// Location parameter was NaN or infinite.
    BadLocation,
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::BadScale => write!(f, "scale parameter must be finite and non-negative"),
            DistError::BadLocation => write!(f, "location parameter must be finite"),
        }
    }
}

impl std::error::Error for DistError {}

/// Gaussian `N(mean, std_dev²)` sampled by Box–Muller.
#[derive(Clone, Copy, Debug)]
pub struct Normal<F: Float> {
    mean: F,
    std_dev: F,
}

impl<F: Float> Normal<F> {
    pub fn new(mean: F, std_dev: F) -> Result<Self, DistError> {
        if !mean.is_finite_f() {
            return Err(DistError::BadLocation);
        }
        if !std_dev.is_finite_f() || std_dev.to_f64() < 0.0 {
            return Err(DistError::BadScale);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl<F: Float> Distribution<F> for Normal<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        let u1 = open01(rng);
        let u2 = f64::standard_sample(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        F::from_f64(self.mean.to_f64() + self.std_dev.to_f64() * z)
    }
}

/// Uniform over `[low, high)` (or `[low, high]` via `new_inclusive`).
#[derive(Clone, Copy, Debug)]
pub struct Uniform<F: Float> {
    low: F,
    span: F,
}

impl<F: Float> Uniform<F> {
    /// Uniform over `[low, high)`.
    ///
    /// # Panics
    /// Panics when `low >= high` (mirrors upstream).
    pub fn new(low: F, high: F) -> Self {
        assert!(
            low.to_f64() < high.to_f64(),
            "Uniform::new called with low >= high"
        );
        Uniform {
            low,
            span: F::from_f64(high.to_f64() - low.to_f64()),
        }
    }

    /// Uniform over `[low, high]`.
    pub fn new_inclusive(low: F, high: F) -> Self {
        assert!(
            low.to_f64() <= high.to_f64(),
            "Uniform::new_inclusive called with low > high"
        );
        Uniform {
            low,
            span: F::from_f64(high.to_f64() - low.to_f64()),
        }
    }
}

impl<F: Float> Distribution<F> for Uniform<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        let u = f64::standard_sample(rng);
        F::from_f64(self.low.to_f64() + u * self.span.to_f64())
    }
}

/// Gumbel(location, scale): `loc − scale · ln(−ln U)` for `U ∈ (0, 1)`.
#[derive(Clone, Copy, Debug)]
pub struct Gumbel<F: Float> {
    location: F,
    scale: F,
}

impl<F: Float> Gumbel<F> {
    pub fn new(location: F, scale: F) -> Result<Self, DistError> {
        if !location.is_finite_f() {
            return Err(DistError::BadLocation);
        }
        if !scale.is_finite_f() || scale.to_f64() < 0.0 {
            return Err(DistError::BadScale);
        }
        Ok(Gumbel { location, scale })
    }
}

impl<F: Float> Distribution<F> for Gumbel<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        let u = open01(rng).min(1.0 - f64::EPSILON);
        F::from_f64(self.location.to_f64() - self.scale.to_f64() * (-u.ln()).ln())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = Normal::new(1.0f64, 2.0).unwrap();
        let samples: Vec<f64> = (0..50_000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn normal_rejects_bad_params() {
        assert!(Normal::new(0.0f32, -1.0).is_err());
        assert!(Normal::new(f32::NAN, 1.0).is_err());
        assert!(Normal::new(0.0f32, 0.0).is_ok());
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = StdRng::seed_from_u64(6);
        let u = Uniform::new(-2.0f32, 3.0);
        for _ in 0..10_000 {
            let v = u.sample(&mut rng);
            assert!((-2.0..3.0).contains(&v));
        }
        let inc = Uniform::new_inclusive(-0.5f32, 0.5);
        for _ in 0..10_000 {
            let v = inc.sample(&mut rng);
            assert!((-0.5..=0.5).contains(&v));
        }
    }

    #[test]
    fn gumbel_finite_and_centered() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = Gumbel::new(0.0f32, 1.0).unwrap();
        let samples: Vec<f32> = (0..50_000).map(|_| g.sample(&mut rng)).collect();
        assert!(samples.iter().all(|v| v.is_finite()));
        let mean = samples.iter().sum::<f32>() / samples.len() as f32;
        // Gumbel(0,1) mean is the Euler–Mascheroni constant ≈ 0.5772.
        assert!((mean - 0.5772).abs() < 0.05, "mean {mean}");
    }
}
