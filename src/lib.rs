//! # odnet-repro — workspace façade
//!
//! Re-exports the public API of the ODNET (ICDE 2022) reproduction so
//! examples and downstream users need a single dependency:
//!
//! - [`tensor`] — the from-scratch autograd substrate (`od-tensor`);
//! - [`hsg`] — the Heterogeneous Spatial Graph (`od-hsg`);
//! - [`data`] — synthetic datasets, metrics, A/B simulator (`od-data`);
//! - [`core`] — the ODNET model, trainer, evaluator (`odnet-core`);
//! - [`baselines`] — the paper's seven comparison methods (`od-baselines`);
//! - [`serve`] — the concurrent serving engine over the frozen artifact
//!   (`od-serve`);
//! - [`http`] — the hardened HTTP/1.1 front-end over the serving funnel
//!   (`od-http`).
//!
//! Plus one first-party module: [`online`], the drift → retrain → freeze →
//! publish loop that `odnet online` drives (DESIGN.md §13).
//!
//! See `examples/quickstart.rs` for the end-to-end train → evaluate →
//! serve loop.

#![warn(missing_docs)]

pub mod online;

pub use od_baselines as baselines;
pub use od_data as data;
pub use od_hsg as hsg;
pub use od_http as http;
pub use od_serve as serve;
pub use od_tensor as tensor;
pub use odnet_core as core;
