//! `odnet` — command-line interface to the ODNET reproduction.
//!
//! ```text
//! odnet train --variant odnet --users 400 --cities 30 --epochs 5 --out model.json
//! odnet eval  --model model.json
//! odnet recommend --model model.json --user 7 --top-k 5
//! ```
//!
//! The synthetic dataset is regenerated deterministically from the
//! parameters embedded in the model file, so `eval` and `recommend` need no
//! separate data artifact.

use od_bench::heuristic_candidates;
use od_data::{FliggyConfig, FliggyDataset};
use od_hsg::{CityId, HsgBuilder, UserId};
use odnet_core::{
    evaluate_on_fliggy, try_train, FeatureExtractor, FrozenOdNet, GroupInput, OdNetModel,
    OdnetConfig, Variant,
};
use std::collections::HashMap;
use std::process::ExitCode;

/// The on-disk bundle: everything needed to rebuild dataset + model.
#[derive(serde::Serialize, serde::Deserialize)]
struct ModelFile {
    data_config: FliggyConfig,
    variant: String,
    checkpoint: String,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = parse_flags(&args[1..]);
    let result = match command.as_str() {
        "train" => cmd_train(&flags),
        "eval" => cmd_eval(&flags),
        "recommend" => cmd_recommend(&flags),
        "freeze" => cmd_freeze(&flags),
        "serve" => cmd_serve(&flags),
        "serve-bench" => cmd_serve_bench(&flags),
        "metrics" => cmd_metrics(&flags),
        "trace" => cmd_trace(&flags),
        "online" => cmd_online(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
odnet — ODNET (ICDE 2022) reproduction CLI

USAGE:
  odnet train     --out FILE [--variant odnet|odnet-g|stl+g|stl-g]
                  [--users N] [--cities N] [--epochs N] [--seed N]
                  [--metrics-jsonl FILE]
  odnet eval      --model FILE
  odnet recommend (--model FILE | --artifact FILE) --user ID [--top-k K]
  odnet freeze    --out BASE (--model FILE |
                  [--variant V] [--users N] [--cities N] [--embed-dim D])
  odnet serve     [--artifact FILE] [--users N] [--cities N] [--addr H:P]
                  [--shards N] [--workers N] [--trace] [--smoke]
  odnet serve-bench [--artifact FILE] [--users N] [--cities N] [--workers N]
                  [--requests N] [--clients N] [--batch N] [--no-coalesce]
                  [--check] [--inject-panics N] [--swap-every N] [--trace]
                  [--no-stage-timing] [--metrics-json FILE] [--funnel [--top-k K]]
  odnet metrics   [--artifact FILE] [--json] [--out FILE] [--requests N]
  odnet trace     --addr H:P [--min-ms N] [--errors] [--limit N]
                  [--chrome FILE]
  odnet online    [--users N] [--cities N] [--rounds N] [--panel N]
                  [--top K] [--epochs N] [--seed N] [--ab-seed N]
                  [--workers N] [--out-dir DIR] [--metrics-jsonl FILE]

`freeze` writes a serving artifact in both formats: BASE.json (the
debuggable interchange format) and BASE.odz (the zero-copy binary that
serving replicas mmap; see DESIGN.md §12). From --model it extracts the
trained artifact embedded in the checkpoint; without it, it freezes an
untrained model of the given universe size — the paper-scale cold-start
path (odnet-g needs no graph, so freezing 2.6M users is cheap).

`recommend` serves one user through the full funnel (DESIGN.md S14): the
retrieval tier proposes the --top-k best OD pairs straight from the
frozen dense tables, the live engine ranks them, and the listing is
stamped with the artifact generation that served each stage. --artifact
serves from an .odz/.json artifact on disk (mmap'd for .odz); --model
extracts the artifact embedded in a training checkpoint.

`serve` exposes the artifact over the hardened od-http tier (DESIGN.md
S15): POST /v1/score ranks a raw request group, POST /v1/recommend runs
the retrieve -> rank funnel, GET /healthz reports readiness (NOT-READY
while draining), GET /metrics renders the od-obs registry as Prometheus
text. Requests shard across --shards engines by user id; closing stdin
(Ctrl-D) starts a graceful drain. --smoke runs the self-driving e2e
instead of waiting: it binds an ephemeral port, drives every route over
a real socket, asserts scores are bit-exact with direct scoring and both
version stamps match the loaded artifact, then drains and verifies the
drain settled cleanly — the ci.sh serving gate.

`serve-bench` and `metrics` accept --artifact to serve a frozen artifact
from disk (mmap'd when the file ends in .odz) instead of building a model
in process; the dataset defaults to the artifact's universe sizes. With
--swap-every N, serve-bench hot-publishes a fresh model generation into
the live engine every N completed requests; --check then additionally
asserts the publish history reconciled and no ticket was lost across any
swap. With --funnel, serve-bench drives the retrieve -> rank funnel
instead of raw engine groups and reports end-to-end throughput; --check
then asserts every response came back full, in rank order, with both
stage stamps on the same generation.

`serve --trace` turns on request-scoped tracing (DESIGN.md S16): every
request gets an X-Request-Id (client-supplied or minted) echoed on the
response, and the tail sampler keeps slow/error traces (plus 1/64 of the
rest) in an in-memory ring served by GET /debug/traces. `serve-bench
--trace` drives the closed loop with tracing on and, with --check,
asserts the ring is populated with well-formed span trees. `trace` pulls
the ring from a running server: default prints the JSON document,
--chrome FILE writes Chrome trace_event JSON loadable in
chrome://tracing or Perfetto.

`metrics` exercises the trainer and the serving engine briefly (including
one mid-run hot publish, so the per-generation od_engine_version_* series
appear for two epochs), then renders every series in the process-global
od-obs registry as Prometheus text exposition (default) or JSON (--json).

`online` runs the drift -> retrain -> freeze -> publish loop (DESIGN.md
S13): each simulated day a user panel is served through a live engine,
the click stream becomes labeled training data, and the retrained model
is frozen to DIR/gen-NNN.odz and hot-published for the next day.
--ab-seed seeds the click simulator's common random numbers separately
from the dataset --seed; --metrics-jsonl writes one row per round.
";

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                flags.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(key.to_string(), String::new());
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    flags
}

fn get_usize(flags: &HashMap<String, String>, key: &str, default: usize) -> Result<usize, String> {
    match flags.get(key) {
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key} expects a number, got {v:?}")),
        None => Ok(default),
    }
}

fn parse_variant(name: &str) -> Result<Variant, String> {
    match name.to_ascii_lowercase().as_str() {
        "odnet" => Ok(Variant::Odnet),
        "odnet-g" => Ok(Variant::OdnetG),
        "stl+g" | "stlplusg" => Ok(Variant::StlPlusG),
        "stl-g" | "stlg" => Ok(Variant::StlG),
        other => Err(format!(
            "unknown variant {other:?} (expected odnet, odnet-g, stl+g, stl-g)"
        )),
    }
}

fn build_dataset(cfg: &FliggyConfig) -> FliggyDataset {
    FliggyDataset::generate(cfg.clone())
}

fn build_hsg(ds: &FliggyDataset) -> od_hsg::Hsg {
    let coords = ds.world.cities.iter().map(|c| c.coords).collect();
    let mut b = HsgBuilder::new(ds.world.num_users(), coords);
    for it in ds.hsg_interactions() {
        b.add_interaction(it);
    }
    b.build()
}

/// 1-candidate-heavy request templates from a few distinct user contexts —
/// the workload cross-request micro-batching exists for. Shared by
/// `serve-bench` and `metrics`.
fn serving_templates(ds: &FliggyDataset, fx: &FeatureExtractor) -> Result<Vec<GroupInput>, String> {
    let day = ds.train_end_day();
    let mut groups = Vec::new();
    for user in (0..ds.world.num_users() as u32)
        .map(UserId)
        .filter(|&u| !ds.long_term(u, day).is_empty())
        .take(4)
    {
        let pairs = heuristic_candidates(ds, user, day, 32);
        for p in pairs.iter().take(4) {
            groups.push(fx.group_for_serving(ds, user, day, std::slice::from_ref(p)));
        }
        if pairs.len() >= 8 {
            groups.push(fx.group_for_serving(ds, user, day, &pairs[..8]));
        }
    }
    if groups.is_empty() {
        return Err("no serving templates: dataset too small".into());
    }
    Ok(groups)
}

fn cmd_train(flags: &HashMap<String, String>) -> Result<(), String> {
    let out = flags.get("out").ok_or("--out FILE is required")?;
    let variant = parse_variant(flags.get("variant").map(String::as_str).unwrap_or("odnet"))?;
    let data_config = FliggyConfig {
        num_users: get_usize(flags, "users", 400)?,
        num_cities: get_usize(flags, "cities", 30)?,
        seed: get_usize(flags, "seed", 0xF11667)? as u64,
        ..FliggyConfig::default()
    };
    let model_config = OdnetConfig {
        epochs: get_usize(flags, "epochs", 5)?,
        ..OdnetConfig::default()
    };
    eprintln!(
        "generating dataset ({} users, {} cities)…",
        data_config.num_users, data_config.num_cities
    );
    let ds = build_dataset(&data_config);
    let fx = FeatureExtractor::new(model_config.max_long_seq, model_config.max_short_seq);
    let hsg = variant.uses_graph().then(|| build_hsg(&ds));
    let mut model = OdNetModel::new(
        variant,
        model_config,
        ds.world.num_users(),
        ds.world.num_cities(),
        hsg,
    );
    eprintln!(
        "training {} ({} weights)…",
        variant.name(),
        model.num_weights()
    );
    let groups = fx.groups_from_samples(&ds, &ds.train);
    // Surface a non-finite-loss abort as a CLI error (with its epoch and
    // batch index) instead of a panic.
    let report = try_train(&mut model, &groups).map_err(|e| e.to_string())?;
    eprintln!(
        "done in {:.1}s; losses {:?}",
        report.wall_time.as_secs_f64(),
        report.epoch_losses
    );
    if let Some(path) = flags.get("metrics-jsonl") {
        if path.is_empty() {
            return Err("--metrics-jsonl expects a file path".into());
        }
        std::fs::write(path, report.to_jsonl()).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!(
            "wrote {} epoch telemetry rows to {path}",
            report.epochs.len()
        );
    }
    let bundle = ModelFile {
        data_config,
        variant: variant.name().to_string(),
        checkpoint: model.save_json(ds.world.num_users(), ds.world.num_cities()),
    };
    let json = serde_json::to_string(&bundle).map_err(|e| e.to_string())?;
    std::fs::write(out, json).map_err(|e| format!("writing {out}: {e}"))?;
    eprintln!("saved model to {out}");
    Ok(())
}

fn read_bundle(flags: &HashMap<String, String>) -> Result<ModelFile, String> {
    let path = flags.get("model").ok_or("--model FILE is required")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    serde_json::from_str(&json).map_err(|e| e.to_string())
}

fn load_bundle(flags: &HashMap<String, String>) -> Result<(FliggyDataset, OdNetModel), String> {
    let bundle = read_bundle(flags)?;
    let ds = build_dataset(&bundle.data_config);
    let variant = parse_variant(&bundle.variant)?;
    let hsg = variant.uses_graph().then(|| build_hsg(&ds));
    let model = OdNetModel::load_json(&bundle.checkpoint, hsg).map_err(|e| e.to_string())?;
    Ok((ds, model))
}

fn cmd_eval(flags: &HashMap<String, String>) -> Result<(), String> {
    let (ds, model) = load_bundle(flags)?;
    let fx = FeatureExtractor::new(model.config.max_long_seq, model.config.max_short_seq);
    eprintln!(
        "evaluating {} on {} cases…",
        model.variant.name(),
        ds.eval_cases.len()
    );
    let eval = evaluate_on_fliggy(&model, &ds, &fx);
    println!(
        "AUC-O {:.4}\nAUC-D {:.4}\nHR@1  {:.4}\nHR@5  {:.4}\nHR@10 {:.4}\nMRR@5 {:.4}\nMRR@10 {:.4}\ntheta {:.4}",
        eval.auc_o,
        eval.auc_d,
        eval.ranking.hr1,
        eval.ranking.hr5,
        eval.ranking.hr10,
        eval.ranking.mrr5,
        eval.ranking.mrr10,
        model.theta(),
    );
    Ok(())
}

/// Write a frozen serving artifact to `BASE.json` + `BASE.odz`. From
/// `--model` it extracts the artifact a training run embedded in its
/// checkpoint; otherwise it freezes an untrained model of the requested
/// universe size, which is how paper-scale (2.6M user) artifacts are
/// produced for cold-start experiments without a week of training.
fn cmd_freeze(flags: &HashMap<String, String>) -> Result<(), String> {
    let out = flags
        .get("out")
        .filter(|p| !p.is_empty())
        .ok_or("--out BASE is required (writes BASE.json and BASE.odz)")?;
    let frozen = if flags.contains_key("model") {
        let bundle = read_bundle(flags)?;
        FrozenOdNet::from_checkpoint_json(&bundle.checkpoint).map_err(|e| e.to_string())?
    } else {
        let variant = parse_variant(
            flags
                .get("variant")
                .map(String::as_str)
                .unwrap_or("odnet-g"),
        )?;
        let users = get_usize(flags, "users", 400)?;
        let cities = get_usize(flags, "cities", 30)?;
        let config = OdnetConfig {
            embed_dim: get_usize(flags, "embed-dim", OdnetConfig::default().embed_dim)?,
            ..OdnetConfig::default()
        };
        // Graph variants need the HSG (and therefore the dataset) to
        // materialize their tables; the graph-free variants freeze from
        // universe sizes alone, which is what makes paper scale cheap.
        let hsg = variant
            .uses_graph()
            .then(|| {
                eprintln!(
                    "building dataset + HSG for graph variant {}…",
                    variant.name()
                );
                let ds = build_dataset(&FliggyConfig {
                    num_users: users,
                    num_cities: cities,
                    seed: get_usize(flags, "seed", 0xF11667)? as u64,
                    ..FliggyConfig::default()
                });
                Ok::<_, String>(build_hsg(&ds))
            })
            .transpose()?;
        eprintln!(
            "freezing untrained {} ({users} users × {cities} cities, d = {})…",
            variant.name(),
            config.embed_dim
        );
        OdNetModel::new(variant, config, users, cities, hsg).freeze()
    };
    let json_path = format!("{out}.json");
    let odz_path = format!("{out}.odz");
    std::fs::write(&json_path, frozen.save_json())
        .map_err(|e| format!("writing {json_path}: {e}"))?;
    frozen
        .save_bin(std::path::Path::new(&odz_path))
        .map_err(|e| e.to_string())?;
    let size = |p: &str| {
        std::fs::metadata(p)
            .map(|m| m.len() as f64 / (1 << 20) as f64)
            .unwrap_or(0.0)
    };
    eprintln!(
        "wrote {json_path} ({:.1} MiB) and {odz_path} ({:.1} MiB): {} — {} users × {} cities",
        size(&json_path),
        size(&odz_path),
        frozen.variant().name(),
        frozen.num_users(),
        frozen.num_cities()
    );
    Ok(())
}

/// `serve-bench --funnel`: drive the retrieve → rank funnel end to end
/// (every request runs retrieval over the frozen tables, featurizes the
/// winners, and ranks them through the live engine) and report
/// throughput. With `--check`, assert every response came back full
/// (`--top-k` pairs), in descending rank order, with both stage stamps
/// on the same generation — the CI smoke gate for the funnel path.
#[allow(clippy::too_many_arguments)]
fn run_funnel_bench(
    flags: &HashMap<String, String>,
    ds: &FliggyDataset,
    model: std::sync::Arc<FrozenOdNet>,
    checksum: u32,
    fx: &FeatureExtractor,
    requests: usize,
    workers: usize,
    check: bool,
) -> Result<(), String> {
    use od_serve::{EngineConfig, Funnel, FunnelConfig};

    let n = ds.world.num_cities();
    let top_k = get_usize(flags, "top-k", 16)?.min(n * n.saturating_sub(1));
    let funnel = Funnel::new(
        model,
        checksum,
        EngineConfig {
            workers,
            ..EngineConfig::default()
        },
        FunnelConfig::default(),
    );
    let day = ds.train_end_day();
    let users: Vec<UserId> = (0..ds.world.num_users() as u32)
        .map(UserId)
        .take(16)
        .collect();
    eprintln!(
        "funnel bench: {requests} requests, top-{top_k}, tier {:?}, {workers} workers…",
        funnel.config().tier
    );
    let t = std::time::Instant::now();
    for i in 0..requests {
        let user = users[i % users.len()];
        let rec = funnel
            .recommend(user, top_k, |pairs| {
                let tuples: Vec<(CityId, CityId)> =
                    pairs.iter().map(|p| (p.origin, p.dest)).collect();
                fx.group_for_serving(ds, user, day, &tuples)
            })
            .map_err(|e| format!("request {i}: {e}"))?;
        if check {
            if rec.pairs.len() != top_k {
                return Err(format!(
                    "request {i}: got {} pairs, want {top_k}",
                    rec.pairs.len()
                ));
            }
            if !rec
                .pairs
                .windows(2)
                .all(|w| w[0].rank_score.total_cmp(&w[1].rank_score) != std::cmp::Ordering::Less)
            {
                return Err(format!("request {i}: pairs not in descending rank order"));
            }
            if (rec.retrieved_by.epoch, rec.retrieved_by.checksum)
                != (rec.ranked_by.epoch, rec.ranked_by.checksum)
            {
                return Err(format!(
                    "request {i}: stage stamps diverged without a publish \
                     (retrieved by gen {}, ranked by gen {})",
                    rec.retrieved_by.epoch, rec.ranked_by.epoch
                ));
            }
        }
    }
    let secs = t.elapsed().as_secs_f64();
    funnel.shutdown();
    println!(
        "funnel: {requests} requests in {secs:.2}s ({:.0} req/s, {:.0}us/request)",
        requests as f64 / secs,
        secs * 1e6 / requests as f64
    );
    if check {
        println!("check: all responses full, rank-ordered, and stamp-consistent");
    }
    Ok(())
}

/// Load `--artifact` for serving commands through the one shared
/// extension→mode table ([`od_serve::load_frozen_auto`]): mmap'd for
/// `.odz`, parsed for JSON, with cold-start gauges recorded into the
/// od-obs registry and the artifact's content checksum derived for
/// version attribution.
fn load_artifact_flag(
    flags: &HashMap<String, String>,
) -> Result<Option<od_serve::LoadedArtifact>, String> {
    let Some(path) = flags.get("artifact").filter(|p| !p.is_empty()) else {
        return Ok(None);
    };
    let path = std::path::Path::new(path);
    let loaded = od_serve::load_frozen_auto(path).map_err(|e| e.to_string())?;
    eprintln!(
        "loaded {} artifact {path:?} ({} mode, fnv {:08x}): {} users × {} cities",
        loaded.frozen.variant().name(),
        loaded.mode.name(),
        loaded.checksum,
        loaded.frozen.num_users(),
        loaded.frozen.num_cities()
    );
    Ok(Some(loaded))
}

/// The regenerated benchmark dataset must cover the artifact's id universe
/// (requests draw users/cities from the dataset and score against the
/// artifact's tables).
fn check_artifact_universe(frozen: &FrozenOdNet, ds: &FliggyDataset) -> Result<(), String> {
    if frozen.num_users() != ds.world.num_users() || frozen.num_cities() != ds.world.num_cities() {
        return Err(format!(
            "artifact universe ({} users × {} cities) does not match the dataset \
             ({} users × {} cities); pass --users/--cities matching the artifact \
             (or omit them to use its sizes)",
            frozen.num_users(),
            frozen.num_cities(),
            ds.world.num_users(),
            ds.world.num_cities()
        ));
    }
    Ok(())
}

/// Serve the artifact over the hardened HTTP tier (DESIGN.md §15): score
/// and recommend endpoints sharded across per-core funnels, readiness and
/// Prometheus exposition, graceful drain on stdin close. With `--smoke`,
/// run the self-driving end-to-end check instead: drive every route over
/// a real socket, assert bit-exact scores and artifact version stamps,
/// then drain and verify the drain settled — the ci.sh serving gate.
fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    use od_http::{Featurizer, Server, ServerConfig};
    use od_serve::{EngineConfig, Funnel, FunnelConfig};
    use std::sync::Arc;

    let shards_n = get_usize(flags, "shards", 2)?.max(1);
    let workers = get_usize(flags, "workers", 2)?.max(1);
    let smoke = flags.contains_key("smoke");
    if smoke {
        // The smoke injects an 80ms-stalled request and asserts the tail
        // sampler captured it: a 40ms floor with no 1/N keeps means the
        // ring holds exactly the slow traffic.
        od_obs::trace::global().enable(od_obs::trace::TraceConfig {
            slow_ns: 40_000_000,
            sample_every: 0,
        });
    } else if flags.contains_key("trace") {
        od_obs::trace::global().enable(od_obs::trace::TraceConfig::default());
    }
    let addr = match flags.get("addr").filter(|a| !a.is_empty()) {
        Some(a) => a.clone(),
        // Smoke binds an ephemeral port so gates never collide.
        None if smoke => "127.0.0.1:0".to_string(),
        None => "127.0.0.1:8080".to_string(),
    };

    let artifact = load_artifact_flag(flags)?;
    let (default_users, default_cities) = artifact
        .as_ref()
        .map(|a| (a.frozen.num_users(), a.frozen.num_cities()))
        .unwrap_or((60, 15));
    let data_config = FliggyConfig {
        num_users: get_usize(flags, "users", default_users)?,
        num_cities: get_usize(flags, "cities", default_cities)?,
        seed: get_usize(flags, "seed", 0xF11667)? as u64,
        ..FliggyConfig::tiny()
    };
    let ds = build_dataset(&data_config);
    let (model, checksum) = match artifact {
        Some(loaded) => {
            check_artifact_universe(&loaded.frozen, &ds)?;
            (std::sync::Arc::new(loaded.frozen), loaded.checksum)
        }
        None => {
            let model = OdNetModel::new(
                Variant::Odnet,
                OdnetConfig::tiny(),
                ds.world.num_users(),
                ds.world.num_cities(),
                Some(build_hsg(&ds)),
            );
            let frozen = model.freeze();
            let checksum = frozen.fingerprint();
            (std::sync::Arc::new(frozen), checksum)
        }
    };
    let cfg = model.config();
    let fx = Arc::new(FeatureExtractor::new(cfg.max_long_seq, cfg.max_short_seq));
    let day = ds.train_end_day();
    let ds = Arc::new(ds);
    // The server-side featurizer: grafts retrieval candidates onto the
    // user's regenerated context — the dataset-holding half of the funnel
    // contract that an HTTP client cannot ship over the wire.
    let featurizer: Featurizer = {
        let ds = Arc::clone(&ds);
        let fx = Arc::clone(&fx);
        Arc::new(move |user, pairs| {
            let tuples: Vec<(CityId, CityId)> = pairs.iter().map(|p| (p.origin, p.dest)).collect();
            fx.group_for_serving(&ds, user, day, &tuples)
        })
    };
    let shards: Vec<Arc<Funnel>> = (0..shards_n)
        .map(|_| {
            Arc::new(Funnel::new(
                Arc::clone(&model),
                checksum,
                EngineConfig {
                    workers,
                    ..EngineConfig::default()
                },
                FunnelConfig::default(),
            ))
        })
        .collect();
    let server = Server::start(
        shards,
        featurizer,
        ServerConfig {
            addr,
            allow_debug_stall: smoke,
            ..ServerConfig::default()
        },
    )
    .map_err(|e| format!("bind http server: {e}"))?;
    eprintln!(
        "serving artifact [{checksum:08x}] on http://{} ({shards_n} shard(s) × {workers} worker(s))",
        server.addr()
    );
    if smoke {
        return serve_smoke(server, &model, &ds, &fx, checksum);
    }
    eprintln!(
        "routes: POST /v1/score  POST /v1/recommend  GET /healthz  GET /metrics  \
         GET /debug/traces"
    );
    eprintln!("close stdin (Ctrl-D) to drain and exit");
    let mut sink = String::new();
    loop {
        sink.clear();
        match std::io::stdin().read_line(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    eprintln!("draining…");
    let report = server.shutdown();
    eprintln!(
        "drain {}: {} ticket(s) force-rejected",
        if report.clean { "clean" } else { "timed out" },
        report.drain_rejected
    );
    if report.clean {
        Ok(())
    } else {
        Err("graceful drain timed out with unresolved tickets".into())
    }
}

/// The `serve --smoke` body: the server drives itself over a real socket
/// and asserts the wire contract end-to-end.
fn serve_smoke(
    server: od_http::Server,
    model: &FrozenOdNet,
    ds: &FliggyDataset,
    fx: &FeatureExtractor,
    checksum: u32,
) -> Result<(), String> {
    use od_serve::loadgen::http_request;

    let groups = serving_templates(ds, fx)?;
    let group = &groups[0];
    let expected = model.score_group(group);
    let mut conn =
        std::net::TcpStream::connect(server.addr()).map_err(|e| format!("smoke connect: {e}"))?;

    // Route 1: /v1/score must hand back bit-exact scores stamped with
    // the loaded artifact's generation.
    let body = serde_json::to_string(group).map_err(|e| e.to_string())?;
    let resp = http_request(&mut conn, "POST", "/v1/score", &[], Some(body.as_bytes()))
        .map_err(|e| format!("smoke score request: {e}"))?;
    if resp.status != 200 {
        return Err(format!(
            "smoke score: expected 200, got {} ({})",
            resp.status,
            String::from_utf8_lossy(&resp.body)
        ));
    }
    let scored: od_http::wire::ScoreResponse = serde_json::from_str(
        std::str::from_utf8(&resp.body).map_err(|_| "smoke score: non-utf8 body".to_string())?,
    )
    .map_err(|e| format!("smoke score: bad body: {e}"))?;
    let exact = scored.scores.len() == expected.len()
        && scored
            .scores
            .iter()
            .zip(&expected)
            .all(|(g, w)| g.0.to_bits() == w.0.to_bits() && g.1.to_bits() == w.1.to_bits());
    if !exact {
        return Err("smoke score: wire scores are not bit-exact with direct scoring".into());
    }
    if scored.epoch != 0 || scored.checksum != checksum {
        return Err(format!(
            "smoke score: version stamp (epoch {}, {:08x}) does not match the loaded \
             artifact (epoch 0, {checksum:08x})",
            scored.epoch, scored.checksum
        ));
    }
    if resp.header("x-artifact-epoch") != Some("0") {
        return Err("smoke score: missing X-Artifact-Epoch response header".into());
    }
    if resp.header("x-request-id").is_none() {
        return Err("smoke score: response missing a minted X-Request-Id".into());
    }
    println!(
        "smoke /v1/score: 200, {} scores bit-exact, stamped epoch 0 [{checksum:08x}]",
        scored.scores.len()
    );

    // Route 2: /v1/recommend must run the funnel and stamp both stages
    // with the same generation.
    let ask = format!("{{\"user\":{},\"k\":5}}", group.user.0);
    let resp = http_request(
        &mut conn,
        "POST",
        "/v1/recommend",
        &[],
        Some(ask.as_bytes()),
    )
    .map_err(|e| format!("smoke recommend request: {e}"))?;
    if resp.status != 200 {
        return Err(format!(
            "smoke recommend: expected 200, got {} ({})",
            resp.status,
            String::from_utf8_lossy(&resp.body)
        ));
    }
    let rec: od_http::wire::RecommendResponse = serde_json::from_str(
        std::str::from_utf8(&resp.body)
            .map_err(|_| "smoke recommend: non-utf8 body".to_string())?,
    )
    .map_err(|e| format!("smoke recommend: bad body: {e}"))?;
    if rec.pairs.is_empty() {
        return Err("smoke recommend: empty ranking".into());
    }
    if rec.ranked_by.epoch != 0
        || rec.ranked_by.checksum != checksum
        || rec.retrieved_by.epoch != rec.ranked_by.epoch
        || rec.retrieved_by.checksum != rec.ranked_by.checksum
    {
        return Err(format!(
            "smoke recommend: stage stamps (retrieved epoch {} [{:08x}], ranked epoch {} \
             [{:08x}]) do not agree on the loaded artifact (epoch 0, [{checksum:08x}])",
            rec.retrieved_by.epoch,
            rec.retrieved_by.checksum,
            rec.ranked_by.epoch,
            rec.ranked_by.checksum
        ));
    }
    println!(
        "smoke /v1/recommend: 200, top-{} ranked, both stages stamped epoch 0 [{checksum:08x}]",
        rec.pairs.len()
    );

    // Routes 3 + 4: readiness and exposition.
    let resp = http_request(&mut conn, "GET", "/healthz", &[], None)
        .map_err(|e| format!("smoke healthz request: {e}"))?;
    if resp.status != 200 || resp.body != b"ok\n" {
        return Err(format!(
            "smoke healthz: expected 200 ok, got {}",
            resp.status
        ));
    }
    let resp = http_request(&mut conn, "GET", "/metrics", &[], None)
        .map_err(|e| format!("smoke metrics request: {e}"))?;
    let text = String::from_utf8_lossy(&resp.body);
    if resp.status != 200
        || !text.contains("od_http_requests_total")
        || !text.contains("od_engine_")
    {
        return Err("smoke metrics: exposition is missing od_http_*/od_engine_* series".into());
    }
    println!("smoke /healthz + /metrics: ready, exposition carries od_http_* series");

    // Route 5: request-scoped tracing. Inject a deadline-slow request
    // (the debug stall header is honored only under --smoke) and assert
    // the tail sampler captured it over the real socket with the full
    // span chain, then that the Chrome export of the same ring is valid
    // trace_event JSON.
    let ask = format!("{{\"user\":{},\"k\":5}}", group.user.0);
    let resp = http_request(
        &mut conn,
        "POST",
        "/v1/recommend",
        &[("X-Request-Id", "smoke-slow-1"), ("X-Debug-Stall-Ms", "80")],
        Some(ask.as_bytes()),
    )
    .map_err(|e| format!("smoke slow request: {e}"))?;
    if resp.status != 200 {
        return Err(format!(
            "smoke slow request: expected 200, got {} ({})",
            resp.status,
            String::from_utf8_lossy(&resp.body)
        ));
    }
    if resp.header("x-request-id") != Some("smoke-slow-1") {
        return Err("smoke slow request: X-Request-Id was not echoed".into());
    }
    let resp = http_request(&mut conn, "GET", "/debug/traces?min_ms=40", &[], None)
        .map_err(|e| format!("smoke traces request: {e}"))?;
    if resp.status != 200 {
        return Err(format!("smoke traces: expected 200, got {}", resp.status));
    }
    let doc: serde_json::Value = std::str::from_utf8(&resp.body)
        .map_err(|_| "smoke traces: non-utf8 body".to_string())
        .and_then(|s| {
            serde_json::from_str(s)
                .map_err(|e| format!("smoke traces: body is not valid JSON: {e}"))
        })?;
    let traces = doc
        .get("traces")
        .and_then(|t| t.as_array())
        .ok_or("smoke traces: no traces array")?;
    let slow = traces
        .iter()
        .find(|t| t.get("request_id").and_then(|r| r.as_str()) == Some("smoke-slow-1"))
        .ok_or("smoke traces: the stalled request was not tail-captured")?;
    let spans = slow
        .get("spans")
        .and_then(|s| s.as_array())
        .ok_or("smoke traces: captured trace has no spans")?;
    if spans.len() < 6 {
        return Err(format!(
            "smoke traces: {} spans captured, want at least 6",
            spans.len()
        ));
    }
    let names: Vec<&str> = spans
        .iter()
        .filter_map(|s| s.get("name").and_then(|n| n.as_str()))
        .collect();
    for want in [
        "request",
        "parse",
        "admission",
        "queue_wait",
        "forward",
        "retrieval",
        "write",
    ] {
        if !names.contains(&want) {
            return Err(format!(
                "smoke traces: span chain missing {want:?} (captured: {names:?})"
            ));
        }
    }
    let fwd = spans
        .iter()
        .find(|s| s.get("name").and_then(|n| n.as_str()) == Some("forward"))
        .ok_or("smoke traces: forward span vanished")?;
    if fwd.get("batch").is_none() || fwd.get("epoch").is_none() {
        return Err("smoke traces: forward span is missing batch/epoch attributes".into());
    }
    let resp = http_request(
        &mut conn,
        "GET",
        "/debug/traces?min_ms=40&format=chrome",
        &[],
        None,
    )
    .map_err(|e| format!("smoke chrome traces request: {e}"))?;
    let doc: serde_json::Value = std::str::from_utf8(&resp.body)
        .map_err(|_| "smoke traces: non-utf8 Chrome export".to_string())
        .and_then(|s| {
            serde_json::from_str(s)
                .map_err(|e| format!("smoke traces: Chrome export is not valid JSON: {e}"))
        })?;
    let unit_ok = doc
        .get("displayTimeUnit")
        .and_then(|u| u.as_str())
        .is_some_and(|u| u == "ns");
    let events_ok = doc
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .is_some_and(|a| a.len() >= 6);
    if !unit_ok || !events_ok {
        return Err("smoke traces: Chrome trace_event export is malformed".into());
    }
    println!(
        "smoke /debug/traces: stalled request tail-captured with {} spans; Chrome export valid",
        spans.len()
    );

    drop(conn);
    let report = server.shutdown();
    if !report.clean || report.drain_rejected != 0 {
        return Err(format!(
            "smoke drain: expected a clean drain, got clean={} with {} force-rejected",
            report.clean, report.drain_rejected
        ));
    }
    println!("smoke drain: clean, zero force-rejected tickets");
    Ok(())
}

/// Stress the concurrent serving engine against an untrained frozen model
/// and report throughput/latency. With `--check`, assert that every
/// response matched direct single-threaded scoring bit-for-bit and that
/// cross-request coalescing actually engaged — the CI smoke gate. With
/// `--inject-panics N`, kill N worker batches through the fault-injection
/// hook; `--check` then additionally asserts that the run survived —
/// zero lost tickets, surviving responses still bit-exact, and the
/// supervisor's health counters reconciling with the injected fault count.
fn cmd_serve_bench(flags: &HashMap<String, String>) -> Result<(), String> {
    use od_serve::{drive, drive_swapping, score_all, Engine, EngineConfig, FailPoint, FailSite};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    let workers = get_usize(flags, "workers", 2)?.max(1);
    let requests = get_usize(flags, "requests", 1000)?;
    let clients = get_usize(flags, "clients", workers * 2)?.max(1);
    let max_batch = get_usize(flags, "batch", 64)?.max(1);
    let coalesce = !flags.contains_key("no-coalesce");
    let stage_timing = !flags.contains_key("no-stage-timing");
    let check = flags.contains_key("check");
    let inject = get_usize(flags, "inject-panics", 0)? as u64;
    let swap_every = get_usize(flags, "swap-every", 0)?;
    let trace_on = flags.contains_key("trace");
    if trace_on {
        // Default policy: keep slow (≥10ms) and 1/64 of the rest — the
        // same configuration the throughput bench's overhead gate runs.
        od_obs::trace::global().enable(od_obs::trace::TraceConfig::default());
    }

    let artifact = load_artifact_flag(flags)?;
    let (default_users, default_cities) = artifact
        .as_ref()
        .map(|a| (a.frozen.num_users(), a.frozen.num_cities()))
        .unwrap_or((60, 15));
    let data_config = FliggyConfig {
        num_users: get_usize(flags, "users", default_users)?,
        num_cities: get_usize(flags, "cities", default_cities)?,
        seed: get_usize(flags, "seed", 0xF11667)? as u64,
        ..FliggyConfig::tiny()
    };
    eprintln!(
        "generating dataset ({} users, {} cities)…",
        data_config.num_users, data_config.num_cities
    );
    let ds = build_dataset(&data_config);
    let (model, checksum) = match artifact {
        Some(loaded) => {
            check_artifact_universe(&loaded.frozen, &ds)?;
            (Arc::new(loaded.frozen), loaded.checksum)
        }
        None => {
            let cfg = OdnetConfig::tiny();
            let model = OdNetModel::new(
                Variant::Odnet,
                cfg,
                ds.world.num_users(),
                ds.world.num_cities(),
                Some(build_hsg(&ds)),
            );
            let frozen = model.freeze();
            let checksum = frozen.fingerprint();
            (Arc::new(frozen), checksum)
        }
    };
    let fx = FeatureExtractor::new(model.config().max_long_seq, model.config().max_short_seq);
    if flags.contains_key("funnel") {
        return run_funnel_bench(flags, &ds, model, checksum, &fx, requests, workers, check);
    }
    let groups = serving_templates(&ds, &fx)?;
    let expected = score_all(&model, &groups);

    // Deterministic fault seed: kill batches 3, 7, 11, … (every 4th) at
    // the BeforeBatch site until the budget is spent. Spacing guarantees
    // healthy batches interleave with the faulted ones; even a maximally
    // coalesced run (requests / max_batch drains) reaches the last seed.
    let injected = Arc::new(AtomicU64::new(0));
    let fail_point: Option<FailPoint> = (inject > 0).then(|| {
        let counter = Arc::clone(&injected);
        let budget = inject;
        Arc::new(move |site: FailSite, seq: u64| {
            if site == FailSite::BeforeBatch
                && seq >= 3
                && (seq - 3).is_multiple_of(4)
                && counter
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |c| {
                        (c < budget).then_some(c + 1)
                    })
                    .is_ok()
            {
                panic!("injected fault at batch {seq}");
            }
        }) as FailPoint
    });

    if inject > 0 {
        // Injected worker panics are expected here; keep each report to a
        // single line instead of the default multi-line backtrace dump.
        std::panic::set_hook(Box::new(|info| eprintln!("worker fault: {info}")));
    }
    let engine = Engine::new_versioned(
        Arc::clone(&model),
        checksum,
        EngineConfig {
            workers,
            queue_capacity: 1024,
            max_batch,
            coalesce,
            fail_point,
            stage_timing,
            ..EngineConfig::default()
        },
    );
    eprintln!(
        "driving {requests} requests through {workers} worker(s) from {clients} client(s) \
         (coalescing {}, injecting {inject} panic(s), swapping every {swap_every})…",
        if coalesce { "on" } else { "off" }
    );
    let r = if swap_every > 0 {
        // Hot-swap under load: publish content-identical generations so
        // the oracle comparison stays valid across every swap (see
        // `drive_swapping`).
        let source_model = Arc::clone(&model);
        let source = move || Arc::new((*source_model).clone());
        drive_swapping(
            &engine,
            &groups,
            Some(&expected),
            requests,
            clients,
            swap_every,
            &source,
        )
    } else {
        drive(&engine, &groups, Some(&expected), requests, clients)
    };
    let health = engine.health();
    // Snapshot the registry while the engine is still alive: dropping the
    // engine zeroes its gauges (queue depth, live workers, hit-rate).
    let snap = od_obs::global().snapshot();
    if let Some(path) = flags.get("metrics-json") {
        if path.is_empty() {
            return Err("--metrics-json expects a file path".into());
        }
        std::fs::write(path, snap.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {} metric series to {path}", snap.series.len());
    }
    println!(
        "requests      {}\nthroughput    {:.0} req/s\np50 latency   {:.0} us\n\
         p99 latency   {:.0} us\nforwards      {}\nreq/forward   {:.2}\n\
         coalesced     {}\nrejected      {}\nmismatches    {}\nfaulted       {}\n\
         worker panics {}\nrespawns      {}\nlive workers  {}/{}\n\
         artifact epoch {}\nartifact fnv  {:08x}\npublishes     {}\nretired gens  {}",
        r.requests,
        r.requests_per_sec,
        r.p50_us,
        r.p99_us,
        r.forwards,
        r.mean_requests_per_forward,
        r.coalesced_requests,
        r.rejected_retries,
        r.mismatches,
        r.faulted,
        health.worker_panics,
        health.respawns,
        health.live_workers,
        health.configured_workers,
        health.artifact_epoch,
        health.artifact_checksum,
        r.publishes,
        health.retired_artifacts,
    );
    if check {
        if r.mismatches != 0 {
            return Err(format!(
                "{} engine responses diverged from direct scoring",
                r.mismatches
            ));
        }
        if r.requests + r.faulted != requests as u64 {
            return Err(format!(
                "lost tickets: {} scored + {} faulted != {requests} submitted",
                r.requests, r.faulted
            ));
        }
        if coalesce && r.coalesced_requests == 0 {
            return Err("coalescing never engaged under concurrent load".into());
        }
        if swap_every > 0 {
            // The swap path must actually have engaged, and the engine's
            // health view of the publish history must reconcile with the
            // load generator's count.
            if r.publishes == 0 {
                return Err(format!(
                    "publisher never swapped ({requests} requests, --swap-every {swap_every})"
                ));
            }
            if health.publishes != r.publishes {
                return Err(format!(
                    "health counted {} publishes, load generator {}",
                    health.publishes, r.publishes
                ));
            }
            if health.artifact_epoch != r.publishes {
                return Err(format!(
                    "artifact epoch {} does not match {} publishes",
                    health.artifact_epoch, r.publishes
                ));
            }
        } else if health.publishes != 0 {
            return Err(format!(
                "{} publishes recorded in a pinned-artifact run",
                health.publishes
            ));
        }
        // Stage clock: a loaded run must have populated the lifecycle
        // histograms end to end, and the engine-level hit-rate gauge must
        // agree that coalescing engaged.
        if stage_timing {
            for name in [
                "od_request_queue_wait_ns",
                "od_request_e2e_ns",
                "od_engine_batch_size",
            ] {
                if snap.histogram(name).count() == 0 {
                    return Err(format!("{name} has no samples after a loaded run"));
                }
            }
            let forward_samples: u64 = snap
                .series
                .iter()
                .filter(|s| s.name == "od_request_forward_ns")
                .map(|s| match &s.value {
                    od_obs::Value::Histogram(h) => h.count(),
                    _ => 0,
                })
                .sum();
            if forward_samples == 0 {
                return Err("od_request_forward_ns has no samples after a loaded run".into());
            }
        }
        if coalesce {
            let hit_rate = match snap.find("od_engine_coalesce_hit_rate").map(|s| &s.value) {
                Some(od_obs::Value::Float(v)) => *v,
                _ => 0.0,
            };
            if hit_rate <= 0.0 {
                return Err("od_engine_coalesce_hit_rate stayed at zero".into());
            }
        }
        if inject > 0 {
            if injected.load(Ordering::SeqCst) != inject {
                return Err(format!(
                    "fault harness only fired {} of {inject} injected panics",
                    injected.load(Ordering::SeqCst)
                ));
            }
            if health.worker_panics != inject {
                return Err(format!(
                    "health counted {} worker panics, expected {inject}",
                    health.worker_panics
                ));
            }
            if r.faulted < inject {
                return Err(format!(
                    "{} faulted responses for {inject} killed batches",
                    r.faulted
                ));
            }
            // The supervisor must have healed the pool by the time the
            // closed loop drained (give it a beat in case the last fault
            // was near the end of the run).
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
            loop {
                let h = engine.health();
                if h.respawns == inject && h.live_workers == h.configured_workers {
                    break;
                }
                if std::time::Instant::now() >= deadline {
                    return Err(format!(
                        "worker pool never recovered: {} respawns, {}/{} live",
                        h.respawns, h.live_workers, h.configured_workers
                    ));
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        } else if r.faulted != 0 {
            return Err(format!("{} faulted responses without injection", r.faulted));
        }
        eprintln!(
            "check passed: bit-exact responses{}{}{}",
            if coalesce { ", coalescing engaged" } else { "" },
            if inject > 0 {
                ", survived injected faults with zero lost tickets"
            } else {
                ""
            },
            if swap_every > 0 {
                ", hot-swapped generations under load"
            } else {
                ""
            }
        );
    }
    if trace_on {
        let tracer = od_obs::trace::global();
        let ts = tracer.stats();
        println!(
            "traces kept   {}/{} (slowest {} at {:.0} us)",
            ts.kept,
            ts.started,
            od_obs::trace::hex_id(ts.slowest_id),
            ts.slowest_ns as f64 / 1e3
        );
        if check {
            if ts.kept == 0 {
                return Err(format!(
                    "--trace run kept no traces ({} started)",
                    ts.started
                ));
            }
            let ring = tracer.snapshot(0, false, 0);
            if ring.is_empty() {
                return Err("--trace run left an empty trace ring".into());
            }
            for t in &ring {
                od_obs::trace::check_well_formed(t).map_err(|e| {
                    format!("malformed trace {}: {e}", od_obs::trace::hex_id(t.trace_id))
                })?;
            }
            eprintln!(
                "trace check passed: {} ring traces are well-formed span trees",
                ring.len()
            );
        }
    }
    Ok(())
}

/// Exercise the full pipeline briefly — a tiny training run, then a loaded
/// drive of the serving engine on the freshly frozen model — and render
/// every series in the process-global od-obs registry. The quickest way to
/// see the whole metric inventory with live values.
fn cmd_metrics(flags: &HashMap<String, String>) -> Result<(), String> {
    use od_serve::{drive, score_all, Engine, EngineConfig};
    use std::sync::Arc;

    let artifact = load_artifact_flag(flags)?;
    let (default_users, default_cities) = artifact
        .as_ref()
        .map(|a| (a.frozen.num_users(), a.frozen.num_cities()))
        .unwrap_or((40, 12));
    let data_config = FliggyConfig {
        num_users: get_usize(flags, "users", default_users)?,
        num_cities: get_usize(flags, "cities", default_cities)?,
        seed: get_usize(flags, "seed", 0xF11667)? as u64,
        ..FliggyConfig::tiny()
    };
    let requests = get_usize(flags, "requests", 2000)?;
    eprintln!(
        "exercising {} + serving engine ({} users, {} cities, {requests} requests)…",
        if artifact.is_some() {
            "frozen artifact"
        } else {
            "trainer"
        },
        data_config.num_users,
        data_config.num_cities
    );
    let ds = build_dataset(&data_config);
    let (frozen, checksum) = match artifact {
        Some(loaded) => {
            // Serving an on-disk artifact: no training pass, so the
            // rendered registry shows the cold-start series instead of the
            // trainer's.
            check_artifact_universe(&loaded.frozen, &ds)?;
            (Arc::new(loaded.frozen), loaded.checksum)
        }
        None => {
            let cfg = OdnetConfig {
                epochs: 2,
                ..OdnetConfig::tiny()
            };
            let fx = FeatureExtractor::new(cfg.max_long_seq, cfg.max_short_seq);
            let mut model = OdNetModel::new(
                Variant::Odnet,
                cfg,
                ds.world.num_users(),
                ds.world.num_cities(),
                Some(build_hsg(&ds)),
            );
            let train_groups = fx.groups_from_samples(&ds, &ds.train);
            try_train(&mut model, &train_groups).map_err(|e| e.to_string())?;
            let frozen = model.freeze();
            let checksum = frozen.fingerprint();
            (Arc::new(frozen), checksum)
        }
    };
    let fx = FeatureExtractor::new(frozen.config().max_long_seq, frozen.config().max_short_seq);
    let templates = serving_templates(&ds, &fx)?;
    let expected = score_all(&frozen, &templates);
    let engine = Engine::new_versioned(
        Arc::clone(&frozen),
        checksum,
        EngineConfig {
            workers: 2,
            queue_capacity: 256,
            max_batch: 32,
            coalesce: true,
            fail_point: None,
            stage_timing: true,
            ..EngineConfig::default()
        },
    );
    // Publish a content-identical second generation halfway through the
    // drive: the rendered registry then shows the per-version request and
    // score counters for epochs 0 *and* 1 (and the oracle comparison stays
    // valid, since both generations score identically).
    let half = requests / 2;
    let r1 = drive(&engine, &templates, Some(&expected), half.max(1), 4);
    engine
        .publish(Arc::new((*frozen).clone()))
        .map_err(|e| e.to_string())?;
    let r2 = drive(
        &engine,
        &templates,
        Some(&expected),
        requests.saturating_sub(half).max(1),
        4,
    );
    if r1.mismatches + r2.mismatches != 0 {
        return Err(format!(
            "{} engine responses diverged from direct scoring",
            r1.mismatches + r2.mismatches
        ));
    }
    // Drive a handful of full-funnel requests so the retrieval-stage
    // series (od_retrieval_*, including the sampled recall probe and a
    // publish-triggered index rebuild) land in the registry too.
    let funnel = od_serve::Funnel::new(
        Arc::clone(&frozen),
        checksum,
        EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        },
        od_serve::FunnelConfig {
            recall_probe_every: 8,
            ..od_serve::FunnelConfig::default()
        },
    );
    let day = ds.train_end_day();
    let n = ds.world.num_cities();
    let funnel_k = 8.min(n * n.saturating_sub(1));
    for u in 0..16u32 {
        let user = UserId(u % ds.world.num_users() as u32);
        let rec = funnel
            .recommend(user, funnel_k, |pairs| {
                let tuples: Vec<(CityId, CityId)> =
                    pairs.iter().map(|p| (p.origin, p.dest)).collect();
                fx.group_for_serving(&ds, user, day, &tuples)
            })
            .map_err(|e| e.to_string())?;
        if rec.pairs.len() != funnel_k {
            return Err(format!(
                "funnel drive: got {} pairs, want {funnel_k}",
                rec.pairs.len()
            ));
        }
    }
    funnel
        .publish(Arc::new((*frozen).clone()), checksum)
        .map_err(|e| e.to_string())?;
    // Snapshot while the engines are alive so their gauges are still set.
    let snap = od_obs::global().snapshot();
    funnel.shutdown();
    drop(engine);
    let rendered = if flags.contains_key("json") {
        snap.to_json()
    } else {
        snap.to_prometheus()
    };
    match flags.get("out") {
        Some(path) if !path.is_empty() => {
            std::fs::write(path, &rendered).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote {} metric series to {path}", snap.series.len());
        }
        _ => print!("{rendered}"),
    }
    Ok(())
}

/// `odnet trace`: pull the tail-sampled trace ring from a running
/// `odnet serve --trace` instance over its `/debug/traces` route. The
/// default prints the native JSON document; `--chrome FILE` writes Chrome
/// `trace_event` JSON (open in `chrome://tracing` or Perfetto).
fn cmd_trace(flags: &HashMap<String, String>) -> Result<(), String> {
    use od_serve::loadgen::http_request;

    let addr = flags
        .get("addr")
        .filter(|a| !a.is_empty())
        .ok_or("--addr HOST:PORT is required (a running `odnet serve --trace`)")?;
    let min_ms = get_usize(flags, "min-ms", 0)?;
    let limit = get_usize(flags, "limit", 0)?;
    let chrome_out = flags.get("chrome").filter(|p| !p.is_empty());
    let mut path = format!("/debug/traces?min_ms={min_ms}&limit={limit}");
    if flags.contains_key("errors") {
        path.push_str("&errors=1");
    }
    if chrome_out.is_some() {
        path.push_str("&format=chrome");
    }
    let mut conn =
        std::net::TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    let resp = http_request(&mut conn, "GET", &path, &[], None)
        .map_err(|e| format!("fetching {path}: {e}"))?;
    if resp.status != 200 {
        return Err(format!(
            "{addr} answered {}: {}",
            resp.status,
            String::from_utf8_lossy(&resp.body)
        ));
    }
    match chrome_out {
        Some(out) => {
            std::fs::write(out, &resp.body).map_err(|e| format!("writing {out}: {e}"))?;
            eprintln!(
                "wrote Chrome trace_event JSON to {out} (open in chrome://tracing or Perfetto)"
            );
        }
        None => println!("{}", String::from_utf8_lossy(&resp.body)),
    }
    Ok(())
}

/// Drive the online learning loop (`odnet_repro::online`): serve simulated
/// days through a live engine, fold the click stream back into training,
/// and hot-publish each retrained generation. Per-round metrics go to
/// stdout and optionally to a JSONL file.
fn cmd_online(flags: &HashMap<String, String>) -> Result<(), String> {
    let defaults = odnet_repro::online::OnlineConfig::default();
    let config = odnet_repro::online::OnlineConfig {
        users: get_usize(flags, "users", defaults.users)?,
        cities: get_usize(flags, "cities", defaults.cities)?,
        seed: get_usize(flags, "seed", defaults.seed as usize)? as u64,
        ab_seed: get_usize(flags, "ab-seed", defaults.ab_seed as usize)? as u64,
        rounds: get_usize(flags, "rounds", defaults.rounds as usize)? as u32,
        panel: get_usize(flags, "panel", defaults.panel)?,
        top_k: get_usize(flags, "top", defaults.top_k)?,
        recall: get_usize(flags, "recall", defaults.recall)?,
        epochs_per_round: get_usize(flags, "epochs", defaults.epochs_per_round)?,
        initial_epochs: get_usize(flags, "initial-epochs", defaults.initial_epochs)?,
        workers: get_usize(flags, "workers", defaults.workers)?,
        out_dir: flags
            .get("out-dir")
            .filter(|p| !p.is_empty())
            .map(std::path::PathBuf::from)
            .unwrap_or(defaults.out_dir),
    };
    eprintln!(
        "online loop: {} rounds × {} users × top-{} ({} users, {} cities), artifacts in {:?}…",
        config.rounds, config.panel, config.top_k, config.users, config.cities, config.out_dir
    );
    let report = odnet_repro::online::run_online(&config)?;
    for round in &report.rounds {
        println!(
            "round {} (day {}): epoch {} (fnv {:08x}) served {} impressions, {} clicks \
             (ctr {:.4}); retrained on {} groups (loss {:.4}) -> published epoch {} (fnv {:08x})",
            round.round,
            round.day,
            round.serving_epoch,
            round.serving_checksum,
            round.impressions,
            round.clicks,
            round.ctr,
            round.train_groups,
            round.train_loss,
            round.published_epoch,
            round.published_checksum,
        );
    }
    println!(
        "overall ctr {:.4} across {} publishes; final artifact epoch {} (fnv {:08x})",
        report.overall_ctr,
        report.publishes,
        report.final_version.epoch,
        report.final_version.checksum,
    );
    if let Some(path) = flags.get("metrics-jsonl") {
        if path.is_empty() {
            return Err("--metrics-jsonl expects a file path".into());
        }
        let mut rows = String::new();
        for round in &report.rounds {
            rows.push_str(&round.to_json());
            rows.push('\n');
        }
        std::fs::write(path, rows).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {} round metric rows to {path}", report.rounds.len());
    }
    Ok(())
}

fn cmd_recommend(flags: &HashMap<String, String>) -> Result<(), String> {
    use od_serve::{EngineConfig, Funnel, FunnelConfig};
    use std::sync::Arc;

    // Serving path, full funnel: no HSG rebuild and no autograd tape —
    // retrieval and ranking both read the frozen dense tables.
    if !flags.contains_key("artifact") && !flags.contains_key("model") {
        return Err("recommend needs --artifact FILE or --model FILE".into());
    }
    let (frozen, checksum, data_config) = match load_artifact_flag(flags)? {
        Some(loaded) => {
            let data_config = FliggyConfig {
                num_users: loaded.frozen.num_users(),
                num_cities: loaded.frozen.num_cities(),
                seed: get_usize(flags, "seed", 0xF11667)? as u64,
                ..FliggyConfig::tiny()
            };
            (loaded.frozen, loaded.checksum, data_config)
        }
        None => {
            let bundle = read_bundle(flags)?;
            let frozen =
                FrozenOdNet::from_checkpoint_json(&bundle.checkpoint).map_err(|e| e.to_string())?;
            let checksum = frozen.fingerprint();
            (frozen, checksum, bundle.data_config)
        }
    };
    let ds = build_dataset(&data_config);
    check_artifact_universe(&frozen, &ds)?;
    let user = UserId(get_usize(flags, "user", 0)? as u32);
    if user.index() >= ds.world.num_users() {
        return Err(format!(
            "user {} out of range (dataset has {} users)",
            user.index(),
            ds.world.num_users()
        ));
    }
    // `--top` kept as an alias from the pre-funnel CLI.
    let top_k = get_usize(flags, "top-k", get_usize(flags, "top", 5)?)?;
    let day = ds.train_end_day();
    let cfg = frozen.config();
    let fx = FeatureExtractor::new(cfg.max_long_seq, cfg.max_short_seq);
    let funnel = Funnel::new(
        Arc::new(frozen),
        checksum,
        EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        },
        FunnelConfig::default(),
    );
    let rec = funnel
        .recommend(user, top_k, |pairs| {
            let tuples: Vec<(CityId, CityId)> = pairs.iter().map(|p| (p.origin, p.dest)).collect();
            fx.group_for_serving(&ds, user, day, &tuples)
        })
        .map_err(|e| e.to_string())?;
    funnel.shutdown();
    println!(
        "top-{top_k} flights for user {} (day {day}) — retrieved by gen {} [{:08x}], ranked by gen {} [{:08x}]:",
        user.index(),
        rec.retrieved_by.epoch,
        rec.retrieved_by.checksum,
        rec.ranked_by.epoch,
        rec.ranked_by.checksum,
    );
    for (i, p) in rec.pairs.iter().enumerate() {
        println!(
            "  {}. {} -> {}   score {:.4}  (retrieval {:.4})",
            i + 1,
            ds.world.cities[p.origin.index()].name,
            ds.world.cities[p.dest.index()].name,
            p.rank_score,
            p.retrieval_score
        );
    }
    Ok(())
}
