//! The online learning loop: drift → retrain → freeze → publish, against
//! a *live* serving engine.
//!
//! The paper's production story (§V-E) is a week-long A/B test where the
//! deployed model keeps serving while new click data accumulates. This
//! module closes that loop offline: each simulated day, the current
//! artifact serves a user panel through a running
//! [`Engine`](od_serve::Engine) (candidates come from the retrieval
//! stage over the *same* frozen tables, rebuilt on every publish, and
//! requests go through the real queue / worker / coalescing path, not a
//! direct scorer call), the
//! common-random-number click stream from
//! [`AbTestHarness::run_day`](od_data::AbTestHarness::run_day) becomes
//! labeled training data, the trainer folds it in, and the refreshed model
//! is frozen to an `.odz` artifact and hot-published into the *same*
//! engine via [`Engine::publish_versioned`](od_serve::Engine) — in-flight
//! requests finish on the old generation, the next day's panel is served
//! by the new one, and the per-epoch od-obs counters attribute every
//! request to the artifact generation that scored it.
//!
//! Artifacts are written one file per generation (`gen-000.odz`,
//! `gen-001.odz`, …) and loaded back through
//! [`load_frozen_auto`](od_serve::load_frozen_auto): the engine serves
//! exactly the mmap'd bytes a production replica would, each generation's
//! [`ArtifactVersion`](od_serve::ArtifactVersion) checksum is the `.odz`
//! header checksum, and no mapped file is ever overwritten in place.
//!
//! Everything is deterministic for a fixed [`OnlineConfig`]: panels and
//! click coins come from `ab_seed` (common random numbers — two runs that
//! serve the same lists see the same clicks), dataset and model init from
//! `seed`, and single-threaded trainer workers keep the weight updates
//! reproducible. See DESIGN.md §13.

use od_data::{AbTestConfig, AbTestHarness, FliggyConfig, FliggyDataset, Impression, OdSample};
use od_retrieval::{RetrievalConfig, Retriever};
use od_serve::{ArtifactVersion, Engine, EngineConfig, Submit};
use odnet_core::{try_train, FeatureExtractor, GroupInput, OdNetModel, OdnetConfig, Variant};
use std::path::PathBuf;
use std::sync::Arc;

/// Configuration of one online-learning simulation.
#[derive(Clone, Debug)]
pub struct OnlineConfig {
    /// Users in the synthetic world.
    pub users: usize,
    /// Cities in the synthetic world.
    pub cities: usize,
    /// Dataset / model-init seed.
    pub seed: u64,
    /// Click-simulator seed (panel sampling + common-random-number click
    /// coins). Independent of `seed` so the same world can be replayed
    /// under different traffic.
    pub ab_seed: u64,
    /// Simulated days; each day ends with a retrain + publish.
    pub rounds: u32,
    /// Users served per day.
    pub panel: usize,
    /// List length served per user (impressions per user per day).
    pub top_k: usize,
    /// Recalled OD candidates ranked per request.
    pub recall: usize,
    /// Trainer epochs folded in per round.
    pub epochs_per_round: usize,
    /// Trainer epochs for the initial (pre-deployment) fit.
    pub initial_epochs: usize,
    /// Engine worker threads.
    pub workers: usize,
    /// Directory the per-generation `.odz` artifacts are written to.
    pub out_dir: PathBuf,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            users: 60,
            cities: 15,
            seed: 0xF11667,
            ab_seed: 0xAB7E57,
            rounds: 3,
            panel: 40,
            top_k: 5,
            recall: 24,
            epochs_per_round: 1,
            initial_epochs: 2,
            workers: 2,
            out_dir: PathBuf::from("target/online"),
        }
    }
}

/// One simulated day's metrics — one JSONL row in `--metrics-jsonl`.
#[derive(Clone, Debug, serde::Serialize)]
pub struct RoundMetrics {
    /// Round index (0-based).
    pub round: u32,
    /// Absolute simulation day served.
    pub day: u32,
    /// Artifact generation that served this day's panel.
    pub serving_epoch: u64,
    /// Its `.odz` header checksum.
    pub serving_checksum: u32,
    /// Impressions served this day.
    pub impressions: u64,
    /// Clicks received this day.
    pub clicks: u64,
    /// The day's CTR.
    pub ctr: f64,
    /// Labeled training groups folded in so far (base + click feedback).
    pub train_groups: usize,
    /// Final-epoch mean loss of the post-day retrain.
    pub train_loss: f32,
    /// Generation published after the retrain (serves round + 1).
    pub published_epoch: u64,
    /// Its `.odz` header checksum.
    pub published_checksum: u32,
    /// Traces the tail sampler kept in the ring this round.
    pub trace_sampled: u64,
    /// Trace id (16 hex digits) of the round's slowest request — the
    /// handle to pull its span tree from the ring.
    pub trace_slowest_id: String,
    /// End-to-end duration of that slowest request in nanoseconds.
    pub trace_max_e2e_ns: u64,
}

impl RoundMetrics {
    /// The row as one JSON line.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("round metrics serialize")
    }
}

/// What [`run_online`] hands back.
#[derive(Clone, Debug, serde::Serialize)]
pub struct OnlineReport {
    /// Per-round metrics, in order.
    pub rounds: Vec<RoundMetrics>,
    /// CTR across the whole simulation.
    pub overall_ctr: f64,
    /// Generations published into the live engine (one per round).
    pub publishes: u64,
    /// The engine's final artifact version.
    pub final_version: ArtifactVersion,
}

/// Run the full loop. Returns per-round metrics; artifacts land in
/// `config.out_dir`, engine/version series in the process-global od-obs
/// registry.
pub fn run_online(config: &OnlineConfig) -> Result<OnlineReport, String> {
    if config.rounds == 0 || config.panel == 0 || config.top_k == 0 {
        return Err("rounds, panel, and top-k must all be at least 1".into());
    }
    std::fs::create_dir_all(&config.out_dir)
        .map_err(|e| format!("creating {:?}: {e}", config.out_dir))?;

    let ds = FliggyDataset::generate(FliggyConfig {
        num_users: config.users,
        num_cities: config.cities,
        seed: config.seed,
        ..FliggyConfig::tiny()
    });
    // Graph-free variant: freezing is a table snapshot, so the per-round
    // retrain → freeze → publish cycle stays cheap (no HSG rebuild).
    let mut model_config = OdnetConfig::tiny();
    model_config.epochs = config.initial_epochs.max(1);
    // One trainer worker keeps weight updates bit-reproducible across runs.
    model_config.workers = 1;
    let fx = FeatureExtractor::new(model_config.max_long_seq, model_config.max_short_seq);
    let mut model = OdNetModel::new(
        Variant::OdnetG,
        model_config,
        ds.world.num_users(),
        ds.world.num_cities(),
        None,
    );
    let base_groups = fx.groups_from_samples(&ds, &ds.train);
    let mut pool: Vec<GroupInput> = base_groups;
    try_train(&mut model, &pool).map_err(|e| e.to_string())?;

    // Generation 0: freeze, write, and serve the mmap'd bytes — the same
    // artifact path a production replica cold-starts from.
    let loaded = freeze_to_generation(&model, &config.out_dir, 0)?;
    let mut current = Arc::new(loaded.frozen);
    // The recall stage reads the same frozen tables the engine serves
    // from, and is rebuilt on every publish — the full-funnel discipline
    // (DESIGN.md §14): candidates always come from the generation that
    // will rank them.
    let mut retriever = Retriever::build(Arc::clone(&current), RetrievalConfig::default());
    let engine = Engine::new_versioned(
        Arc::clone(&current),
        loaded.checksum,
        EngineConfig {
            workers: config.workers.max(1),
            queue_capacity: 256,
            max_batch: 32,
            coalesce: true,
            fail_point: None,
            stage_timing: false,
            ..EngineConfig::default()
        },
    );

    // The test window starts where training data ends: histories keep
    // growing across it while the model's temporal statistics stay frozen
    // at the training horizon — exactly the drift an online loop corrects.
    let harness = AbTestHarness::new(
        &ds.world,
        AbTestConfig {
            days: config.rounds,
            users_per_day: config.panel,
            top_k: config.top_k,
            start_day: ds.train_end_day(),
            seed: config.ab_seed,
        },
    )
    .with_histories(&ds.histories);

    // Per-round trace accounting: the loop is the root of the pipeline
    // here (no HTTP tier), so it opens a trace per panel request and the
    // JSONL rows carry each round's sampled count and slowest request.
    let tracer = od_obs::trace::global();
    if !tracer.enabled() {
        tracer.enable(od_obs::trace::TraceConfig::default());
    }
    tracer.take_slowest();

    let mut rounds = Vec::with_capacity(config.rounds as usize);
    let (mut total_clicks, mut total_impressions) = (0u64, 0u64);
    for r in 0..config.rounds {
        let serving = engine.version();
        let kept_before = tracer.stats().kept;
        let (outcome, impressions) = harness.run_day(r, |user, day, k| {
            let pairs = od_bench::recall_candidates(&retriever, user, config.recall);
            if pairs.is_empty() {
                return Vec::new();
            }
            let group = fx.group_for_serving(&ds, user, day, &pairs);
            let rid = format!("online-d{day}-u{}", user.index());
            let Some(response) = submit_blocking(&engine, group, &rid) else {
                return Vec::new();
            };
            // Rank by the serving score (Eq. 11) of the generation that
            // actually scored the request — θ is learnable, so it moves
            // across publishes.
            debug_assert_eq!(response.version, serving);
            let mut ranked: Vec<(usize, f32)> = response
                .scores
                .iter()
                .enumerate()
                .map(|(i, &(po, pd))| (i, current.serving_score(po, pd)))
                .collect();
            ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
            ranked.into_iter().take(k).map(|(i, _)| pairs[i]).collect()
        });
        total_clicks += outcome.clicks;
        total_impressions += outcome.impressions;
        let trace_sampled = tracer.stats().kept - kept_before;
        let (trace_max_e2e_ns, slowest_id) = tracer.take_slowest();

        // Feedback → labels: clicked slots are positives for both the
        // origin and destination towers, unclicked slots negatives.
        let feedback: Vec<OdSample> = impressions.iter().map(impression_to_sample).collect();
        pool.extend(fx.groups_from_samples(&ds, &feedback));
        model.config.epochs = config.epochs_per_round.max(1);
        let report = try_train(&mut model, &pool).map_err(|e| e.to_string())?;

        let loaded = freeze_to_generation(&model, &config.out_dir, u64::from(r) + 1)?;
        let next = Arc::new(loaded.frozen);
        let published = engine
            .publish_versioned(Arc::clone(&next), loaded.checksum)
            .map_err(|e| e.to_string())?;
        current = next;
        // Re-key the recall index to the generation just published, so
        // the next day's candidates come from the tables that rank them.
        retriever = Retriever::build(Arc::clone(&current), RetrievalConfig::default());

        rounds.push(RoundMetrics {
            round: r,
            day: harness.config().start_day + r,
            serving_epoch: serving.epoch,
            serving_checksum: serving.checksum,
            impressions: outcome.impressions,
            clicks: outcome.clicks,
            ctr: outcome.ctr(),
            train_groups: pool.len(),
            train_loss: report.epoch_losses.last().copied().unwrap_or(f32::NAN),
            published_epoch: published.epoch,
            published_checksum: published.checksum,
            trace_sampled,
            trace_slowest_id: od_obs::trace::hex_id(slowest_id),
            trace_max_e2e_ns,
        });
    }

    let final_version = engine.version();
    let health = engine.health();
    debug_assert_eq!(health.publishes, u64::from(config.rounds));
    Ok(OnlineReport {
        rounds,
        overall_ctr: od_data::ctr(total_clicks, total_impressions),
        publishes: health.publishes,
        final_version,
    })
}

/// Freeze the live model, write generation `gen` as its own `.odz` file
/// (never overwriting a previously mapped one), and load it back mmap'd
/// with its header checksum.
fn freeze_to_generation(
    model: &OdNetModel,
    out_dir: &std::path::Path,
    gen: u64,
) -> Result<od_serve::LoadedArtifact, String> {
    let path = out_dir.join(format!("gen-{gen:03}.odz"));
    model
        .freeze()
        .save_bin(&path)
        .map_err(|e| format!("writing {path:?}: {e}"))?;
    od_serve::load_frozen_auto(&path).map_err(|e| format!("loading {path:?}: {e}"))
}

/// One served list slot as a labeled training sample.
fn impression_to_sample(imp: &Impression) -> OdSample {
    let label = if imp.clicked { 1.0 } else { 0.0 };
    OdSample {
        user: imp.user,
        day: imp.day,
        origin: imp.origin,
        dest: imp.dest,
        label_o: label,
        label_d: label,
    }
}

/// Submit through the live engine, retrying backpressure rejections, and
/// wait for the versioned response. Returns an empty list (skipping the
/// user) only if the engine is shutting down. Opens one trace per request
/// under `rid` — the loop is the pipeline root here.
fn submit_blocking(
    engine: &Engine,
    group: GroupInput,
    rid: &str,
) -> Option<od_serve::ScoredResponse> {
    let tracer = od_obs::trace::global();
    let ctx = if tracer.enabled() {
        tracer.begin(rid)
    } else {
        od_obs::trace::TraceContext::NONE
    };
    let t0 = ctx.is_active().then(od_obs::clock::now);
    let mut group = group;
    let out = loop {
        match engine.submit_traced(group, None, ctx) {
            Submit::Accepted(ticket) => break ticket.wait_versioned().ok(),
            Submit::Rejected(back) => {
                group = back;
                std::thread::yield_now();
            }
            Submit::Invalid { error, .. } => {
                panic!("online loop built an invalid serving group: {error}")
            }
        }
    };
    if let Some(t0) = t0 {
        tracer.end(ctx, "request", t0, od_obs::clock::now(), out.is_none());
    }
    out
}

#[allow(clippy::unwrap_used)]
#[cfg(test)]
mod tests {
    use super::*;

    fn test_config(dir: &str) -> OnlineConfig {
        OnlineConfig {
            users: 40,
            cities: 12,
            rounds: 2,
            panel: 10,
            top_k: 3,
            recall: 16,
            epochs_per_round: 1,
            initial_epochs: 1,
            workers: 2,
            out_dir: std::env::temp_dir().join(dir),
            ..OnlineConfig::default()
        }
    }

    #[test]
    fn loop_publishes_once_per_round_and_serves_every_slot() {
        let config = test_config("odnet-online-test");
        let report = run_online(&config).unwrap();
        assert_eq!(report.rounds.len(), 2);
        assert_eq!(report.publishes, 2);
        assert_eq!(report.final_version.epoch, 2);
        for (i, round) in report.rounds.iter().enumerate() {
            // Day r is served by generation r; generation r + 1 is
            // published from its clicks.
            assert_eq!(round.serving_epoch, i as u64);
            assert_eq!(round.published_epoch, i as u64 + 1);
            assert_eq!(round.impressions, (config.panel * config.top_k) as u64);
            assert!((0.0..=1.0).contains(&round.ctr));
            assert!(round.train_loss.is_finite());
            // Each generation exists as its own on-disk artifact.
            let path = config.out_dir.join(format!("gen-{:03}.odz", i + 1));
            assert!(path.exists(), "missing {path:?}");
        }
        // Click feedback actually grew the training pool.
        assert!(report.rounds[1].train_groups > report.rounds[0].train_groups);
        // Trace stats: every round served requests, so each row carries a
        // slowest-request duration and a 16-hex trace id; the tail
        // sampler kept at least one trace somewhere across the run.
        for round in &report.rounds {
            assert!(round.trace_max_e2e_ns > 0);
            assert_eq!(round.trace_slowest_id.len(), 16);
        }
        assert!(report.rounds.iter().any(|r| r.trace_sampled > 0));
        // JSONL rows serialize.
        for round in &report.rounds {
            let row = round.to_json();
            assert!(row.contains("\"serving_epoch\""));
            assert!(row.contains("\"trace_slowest_id\""));
        }
    }
}
