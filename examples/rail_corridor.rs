//! The paper's §VII generalization claim, exercised: "ODNET can also be
//! directly applied to achieve high-quality train recommendation at OTPs."
//!
//! A rail-corridor world (stations along a high-speed line, interchange
//! hubs every few stops, segment-shaped pattern regions) replaces the
//! flight map; everything else — HSG, ODNET, training, serving — is reused
//! unchanged.
//!
//! Run with:
//! ```sh
//! cargo run --release --example rail_corridor
//! ```

use od_data::{generate_corridor_cities, FliggyConfig, FliggyDataset, World};
use od_hsg::HsgBuilder;
use odnet_core::{evaluate_on_fliggy, train, FeatureExtractor, OdNetModel, OdnetConfig, Variant};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let config = FliggyConfig {
        num_users: 300,
        num_cities: 32,
        ..FliggyConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(config.seed);
    println!("building a {}-station rail corridor…", config.num_cities);
    let stations = generate_corridor_cities(config.num_cities, &mut rng);
    let world = World::from_cities(stations, config.num_users, &mut rng);
    let ds = FliggyDataset::generate_from_world(world, config, &mut rng)
        .expect("corridor world built from the same config");
    println!(
        "  {} train itinerary samples, {} ranking cases",
        ds.train.len(),
        ds.eval_cases.len()
    );

    let coords = ds.world.cities.iter().map(|c| c.coords).collect();
    let mut builder = HsgBuilder::new(ds.world.num_users(), coords);
    for it in ds.hsg_interactions() {
        builder.add_interaction(it);
    }
    let model_cfg = OdnetConfig {
        epochs: 3,
        ..OdnetConfig::default()
    };
    let fx = FeatureExtractor::new(model_cfg.max_long_seq, model_cfg.max_short_seq);
    let mut model = OdNetModel::new(
        Variant::Odnet,
        model_cfg,
        ds.world.num_users(),
        ds.world.num_cities(),
        Some(builder.build()),
    );
    println!("training ODNET on rail itineraries…");
    let groups = fx.groups_from_samples(&ds, &ds.train);
    train(&mut model, &groups);
    let eval = evaluate_on_fliggy(&model, &ds, &fx);
    println!(
        "rail OD recommendation: AUC-O {:.4}, AUC-D {:.4}, HR@5 {:.4}, MRR@5 {:.4}",
        eval.auc_o, eval.auc_d, eval.ranking.hr5, eval.ranking.mrr5
    );

    // Serve one traveller.
    let user = ds.test.first().map(|s| s.user).unwrap_or(od_hsg::UserId(0));
    let day = ds.train_end_day();
    let candidates = od_bench::heuristic_candidates(&ds, user, day, 25);
    let group = fx.group_for_serving(&ds, user, day, &candidates);
    let scores = model.score_group(&group);
    let mut ranked: Vec<(f32, usize)> = scores
        .iter()
        .enumerate()
        .map(|(i, &(po, pd))| (model.serving_score(po, pd), i))
        .collect();
    ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    println!("\ntop-5 rail itineraries for user {:?}:", user);
    for (score, i) in ranked.iter().take(5) {
        let (o, d) = candidates[*i];
        println!(
            "  {} => {}   score {score:.4}",
            ds.world.cities[o.index()].name,
            ds.world.cities[d.index()].name
        );
    }
}
