//! A guided tour of the Heterogeneous Spatial Graph (paper §III): build the
//! Figure-2 style graph from booking interactions, then walk the metapaths
//! that power origin/destination exploration.
//!
//! Run with:
//! ```sh
//! cargo run --release --example hsg_explore
//! ```

use od_data::{FliggyConfig, FliggyDataset, Pattern};
use od_hsg::{CityId, HsgBuilder, Metapath, UserId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let ds = FliggyDataset::generate(FliggyConfig {
        num_users: 200,
        num_cities: 25,
        ..FliggyConfig::default()
    });
    let coords = ds.world.cities.iter().map(|c| c.coords).collect();
    let mut builder = HsgBuilder::new(ds.world.num_users(), coords);
    for it in ds.hsg_interactions() {
        builder.add_interaction(it);
    }
    let hsg = builder.build();
    println!(
        "HSG(V, E, D): {} users + {} cities = {} nodes, {} typed edges",
        hsg.num_users(),
        hsg.num_cities(),
        hsg.num_nodes(),
        hsg.num_edges()
    );

    // Metapath ρ1: a user's 1st-order neighbor cities are their historical
    // departure cities (Definition 3 example).
    let user = UserId(0);
    let name = |c: u32| ds.world.cities[c as usize].name.clone();
    let rho1: Vec<String> = hsg
        .user_neighbor_cities(user, Metapath::RHO1)
        .iter()
        .map(|&c| name(c))
        .collect();
    let rho2: Vec<String> = hsg
        .user_neighbor_cities(user, Metapath::RHO2)
        .iter()
        .map(|&c| name(c))
        .collect();
    println!("\nuser u0's departure cities N¹_ρ1(u0): {rho1:?}");
    println!("user u0's arrival cities  N¹_ρ2(u0): {rho2:?}");

    // A city's ρ2 neighbor cities: other cities visited by the same
    // travellers — the "same pattern" exploration signal. In dense graphs
    // the raw neighbor *set* is uninformative; the co-visitation-weighted
    // top-5 sample is where the pattern signal lives.
    let chance = 1.0 / Pattern::ALL.len() as f64;
    let mut rng0 = StdRng::seed_from_u64(3);
    let sampled = hsg.neighbor_table(Metapath::RHO2, 5, &mut rng0);
    let share = |neighbors_of: &dyn Fn(u32) -> Vec<u32>| -> f64 {
        let (mut same, mut total) = (0usize, 0usize);
        for c in 0..hsg.num_cities() as u32 {
            let p = ds.world.cities[c as usize].pattern;
            for n in neighbors_of(c) {
                total += 1;
                if ds.world.cities[n as usize].pattern == p {
                    same += 1;
                }
            }
        }
        same as f64 / total.max(1) as f64
    };
    let raw_share = share(&|c| hsg.city_neighbor_cities(CityId(c), Metapath::RHO2));
    let sampled_share = share(&|c| sampled.of_city(CityId(c)).iter().map(|x| x.0).collect());
    println!(
        "\nρ2 pattern share — full neighbor set: {:.1}%, weighted top-5 sample: {:.1}% (chance {:.1}%)",
        100.0 * raw_share,
        100.0 * sampled_share,
        100.0 * chance
    );

    // Spatial weights (Eq. 2): nearest cities dominate the row.
    let probe = CityId(0);
    let d = hsg.distances();
    let mut weighted: Vec<(f32, u32)> = (0..hsg.num_cities() as u32)
        .filter(|&j| j != probe.0)
        .map(|j| (d.weight(probe.index(), j as usize), j))
        .collect();
    weighted.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    println!("\nEq. 2 spatial weights from {}:", name(probe.0));
    for (w, j) in weighted.iter().take(4) {
        println!(
            "  {:<22} w = {:.3}  (distance {:.2})",
            name(*j),
            w,
            d.distance(probe.index(), *j as usize)
        );
    }

    // Capped sampling (the paper restricts neighborhoods to 5).
    let mut rng = StdRng::seed_from_u64(7);
    let table = hsg.neighbor_table(Metapath::RHO2, 5, &mut rng);
    let busiest = (0..hsg.num_cities() as u32)
        .max_by_key(|&c| hsg.city_neighbor_cities(CityId(c), Metapath::RHO2).len())
        .unwrap();
    println!(
        "\nbusiest city {} has {} ρ2 neighbors; sampled table keeps {}",
        name(busiest),
        hsg.city_neighbor_cities(CityId(busiest), Metapath::RHO2)
            .len(),
        table.of_city(CityId(busiest)).len()
    );
}
