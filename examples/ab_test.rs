//! A miniature online A/B test (the paper's §V-E protocol): ODNET and
//! MostPop serve live traffic from the same user panels for a simulated
//! week; clicks are drawn from the ground-truth preference model with
//! common random numbers, so the CTR gap reflects ranking quality alone.
//!
//! Run with:
//! ```sh
//! cargo run --release --example ab_test
//! ```

use od_baselines::{CityMeta, MostPop};
use od_bench::heuristic_candidates;
use od_data::{AbTestConfig, AbTestHarness, FliggyConfig, FliggyDataset};
use od_hsg::HsgBuilder;
use odnet_core::{train, FeatureExtractor, OdNetModel, OdScorer, OdnetConfig, Variant};

fn main() {
    let data_cfg = FliggyConfig {
        num_users: 300,
        num_cities: 30,
        ..FliggyConfig::default()
    };
    let ds = FliggyDataset::generate(data_cfg.clone());
    let model_cfg = OdnetConfig {
        epochs: 3,
        ..OdnetConfig::default()
    };
    let fx = FeatureExtractor::new(model_cfg.max_long_seq, model_cfg.max_short_seq);
    let train_groups = fx.groups_from_samples(&ds, &ds.train);

    // Arm 1: ODNET.
    println!("training ODNET…");
    let coords = ds.world.cities.iter().map(|c| c.coords).collect();
    let mut builder = HsgBuilder::new(ds.world.num_users(), coords);
    for it in ds.hsg_interactions() {
        builder.add_interaction(it);
    }
    let mut odnet = OdNetModel::new(
        Variant::Odnet,
        model_cfg,
        ds.world.num_users(),
        ds.world.num_cities(),
        Some(builder.build()),
    );
    train(&mut odnet, &train_groups);

    // Arm 2: MostPop.
    let coords2 = ds.world.cities.iter().map(|c| c.coords).collect();
    let meta = CityMeta::from_groups(coords2, &train_groups);
    let mostpop = MostPop::new(meta);

    // The shared test harness: same panels, same click coins.
    let harness = AbTestHarness::new(
        &ds.world,
        AbTestConfig {
            days: 7,
            users_per_day: 120,
            top_k: 10,
            start_day: data_cfg.horizon_days,
            seed: 0xAB,
        },
    )
    .with_histories(&ds.histories);
    let serve = |scorer: &dyn OdScorer| {
        harness.run(scorer.name(), |user, day, k| {
            let candidates = heuristic_candidates(&ds, user, day, 30);
            let group = fx.group_for_serving(&ds, user, day, &candidates);
            let scores = scorer.score_group(&group);
            let mut ranked: Vec<(f32, (od_hsg::CityId, od_hsg::CityId))> = scores
                .iter()
                .zip(&candidates)
                .map(|(&(po, pd), &pair)| (scorer.serving_score(po, pd), pair))
                .collect();
            ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
            ranked.into_iter().take(k).map(|(_, p)| p).collect()
        })
    };
    println!("serving one simulated week per arm…");
    let odnet_result = serve(&odnet);
    let mostpop_result = serve(&mostpop);

    println!("\ndaily CTR:");
    println!("  day      ODNET   MostPop");
    for (a, b) in odnet_result.days.iter().zip(&mostpop_result.days) {
        println!("  {:>3}    {:.4}   {:.4}", a.day + 1, a.ctr(), b.ctr());
    }
    let (co, cm) = (odnet_result.overall_ctr(), mostpop_result.overall_ctr());
    println!(
        "\noverall: ODNET {co:.4} vs MostPop {cm:.4} (+{:.1}%)",
        (co / cm - 1.0) * 100.0
    );
}
