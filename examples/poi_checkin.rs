//! Next-POI recommendation on an LBSN-style check-in dataset (the paper's
//! Table IV setting): destination-only data, single-task models. Compares
//! the graph-equipped STL+G variant against STL−G and MostPop to show the
//! exploration benefit carries over to the LBSN domain.
//!
//! Run with:
//! ```sh
//! cargo run --release --example poi_checkin
//! ```

use od_baselines::{CityMeta, MostPop};
use od_data::{CheckinConfig, CheckinDataset};
use odnet_core::{evaluate_on_checkin, train, FeatureExtractor, OdNetModel, OdnetConfig, Variant};

fn main() {
    let mut cfg = CheckinConfig::foursquare();
    cfg.num_users = 250;
    cfg.num_pois = 60;
    println!(
        "generating check-in dataset ({} users, {} POIs)…",
        cfg.num_users, cfg.num_pois
    );
    let ds = CheckinDataset::generate(cfg);
    let (users, pois, checkins) = ds.statistics();
    println!("  {users} users, {pois} POIs, {checkins} check-ins");

    let model_cfg = OdnetConfig {
        epochs: 3,
        ..OdnetConfig::default()
    };
    let fx = FeatureExtractor::new(model_cfg.max_long_seq, model_cfg.max_short_seq);
    let train_groups = fx.checkin_groups(&ds, &ds.train);

    // MostPop reference.
    let coords = ds.pois.iter().map(|p| p.coords).collect();
    let meta = CityMeta::from_groups(coords, &train_groups);
    let mostpop = MostPop::new(meta);
    let pop_eval = evaluate_on_checkin(&mostpop, &ds, &fx);

    // STL−G and STL+G (the single-task variants usable on this data).
    let mut results = Vec::new();
    for variant in [Variant::StlG, Variant::StlPlusG] {
        println!("training {}…", variant.name());
        let hsg = variant.uses_graph().then(|| ds.hsg());
        let mut model = OdNetModel::new(
            variant,
            model_cfg.clone(),
            ds.config.num_users,
            ds.config.num_pois,
            hsg,
        );
        train(&mut model, &train_groups);
        let eval = evaluate_on_checkin(&model, &ds, &fx);
        results.push((variant.name(), eval));
    }

    println!("\nnext-POI results (AUC / HR@5 / MRR@5):");
    println!(
        "  {:<10} {:.4}  {:.4}  {:.4}",
        "MostPop", 0.5, pop_eval.ranking.hr5, pop_eval.ranking.mrr5
    );
    for (name, eval) in &results {
        println!(
            "  {:<10} {:.4}  {:.4}  {:.4}",
            name, eval.auc_d, eval.ranking.hr5, eval.ranking.mrr5
        );
    }
    println!(
        "\nexpected shape (paper Table IV): STL+G > STL-G > MostPop — the\n\
         user-POI interaction graph lets the model recommend unvisited POIs\n\
         that share a pattern with the user's history."
    );
}
