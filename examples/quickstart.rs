//! Quickstart: generate a small OD-booking world, train the full ODNET
//! model, evaluate it offline, and serve a top-5 flight list for one user.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use od_bench::heuristic_candidates;
use od_data::{FliggyConfig, FliggyDataset};
use od_hsg::HsgBuilder;
use odnet_core::{evaluate_on_fliggy, train, FeatureExtractor, OdNetModel, OdnetConfig, Variant};

fn main() {
    // 1. Generate a laptop-scale synthetic Fliggy-like dataset.
    let data_cfg = FliggyConfig {
        num_users: 300,
        num_cities: 30,
        ..FliggyConfig::default()
    };
    println!(
        "generating dataset ({} users, {} cities)…",
        data_cfg.num_users, data_cfg.num_cities
    );
    let ds = FliggyDataset::generate(data_cfg);
    let stats = ds.statistics();
    println!(
        "  {} train samples ({} positives), {} eval cases",
        stats.train_total,
        stats.train_pos,
        ds.eval_cases.len()
    );

    // 2. Build the Heterogeneous Spatial Graph from training interactions.
    let coords = ds.world.cities.iter().map(|c| c.coords).collect();
    let mut builder = HsgBuilder::new(ds.world.num_users(), coords);
    for it in ds.hsg_interactions() {
        builder.add_interaction(it);
    }
    let hsg = builder.build();
    println!("HSG: {} nodes, {} edges", hsg.num_nodes(), hsg.num_edges());

    // 3. Train ODNET (heads = 4, K = 2, Adam 0.01 — the paper's setting).
    let model_cfg = OdnetConfig {
        epochs: 3,
        ..OdnetConfig::default()
    };
    let fx = FeatureExtractor::new(model_cfg.max_long_seq, model_cfg.max_short_seq);
    let mut model = OdNetModel::new(
        Variant::Odnet,
        model_cfg,
        ds.world.num_users(),
        ds.world.num_cities(),
        Some(hsg),
    );
    println!("training ODNET ({} weights)…", model.num_weights());
    let groups = fx.groups_from_samples(&ds, &ds.train);
    let report = train(&mut model, &groups);
    println!(
        "  losses per epoch: {:?} ({:.1}s, {:.0} groups/s)",
        report
            .epoch_losses
            .iter()
            .map(|l| (l * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>(),
        report.wall_time.as_secs_f64(),
        report.groups_per_second
    );
    println!("  learned θ = {:.3} (Eq. 8 loss weight)", model.theta());

    // 4. Offline evaluation: AUC + ranking metrics.
    let eval = evaluate_on_fliggy(&model, &ds, &fx);
    println!(
        "offline: AUC-O {:.4}, AUC-D {:.4}, HR@5 {:.4}, MRR@5 {:.4}",
        eval.auc_o, eval.auc_d, eval.ranking.hr5, eval.ranking.mrr5
    );

    // 5. Serving: recall candidates for a user and rank them (Eq. 11).
    let user = ds.test.first().map(|s| s.user).unwrap_or(od_hsg::UserId(0));
    let day = ds.train_end_day();
    let candidates = heuristic_candidates(&ds, user, day, 30);
    let group = fx.group_for_serving(&ds, user, day, &candidates);
    let scores = model.score_group(&group);
    let mut ranked: Vec<(f32, (od_hsg::CityId, od_hsg::CityId))> = scores
        .iter()
        .zip(&candidates)
        .map(|(&(po, pd), &pair)| (model.serving_score(po, pd), pair))
        .collect();
    ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    println!("top-5 flights for user {:?} (day {day}):", user);
    for (score, (o, d)) in ranked.iter().take(5) {
        let on = &ds.world.cities[o.index()].name;
        let dn = &ds.world.cities[d.index()].name;
        println!("  {on} → {dn}   score {score:.4}");
    }
}
