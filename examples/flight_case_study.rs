//! The paper's §V-F case study, reproduced: train ODNET, then inspect the
//! recommended flight list of a user with a fresh outbound booking and show
//! that (1) the *return leg* ranks near the top (the O&D-unity signal) and
//! (2) same-pattern destination cities appear via graph exploration.
//!
//! Run with:
//! ```sh
//! cargo run --release --example flight_case_study
//! ```

use od_bench::heuristic_candidates;
use od_data::{FliggyConfig, FliggyDataset, Pattern};
use od_hsg::{CityId, HsgBuilder, UserId};
use odnet_core::{train, FeatureExtractor, OdNetModel, OdnetConfig, Variant};

fn main() {
    let ds = FliggyDataset::generate(FliggyConfig {
        num_users: 300,
        num_cities: 30,
        ..FliggyConfig::default()
    });
    let coords = ds.world.cities.iter().map(|c| c.coords).collect();
    let mut builder = HsgBuilder::new(ds.world.num_users(), coords);
    for it in ds.hsg_interactions() {
        builder.add_interaction(it);
    }
    let cfg = OdnetConfig {
        epochs: 3,
        ..OdnetConfig::default()
    };
    let fx = FeatureExtractor::new(cfg.max_long_seq, cfg.max_short_seq);
    let mut model = OdNetModel::new(
        Variant::Odnet,
        cfg,
        ds.world.num_users(),
        ds.world.num_cities(),
        Some(builder.build()),
    );
    println!("training ODNET for the case study…");
    let groups = fx.groups_from_samples(&ds, &ds.train);
    train(&mut model, &groups);

    // Case: a user whose most recent booking is a fresh outbound trip —
    // like the paper's user B who just bought Beijing → Chengdu.
    let day = ds.train_end_day();
    let user = (0..ds.world.num_users() as u32)
        .map(UserId)
        .filter(|&u| {
            ds.long_term(u, day)
                .last()
                .is_some_and(|b| day.saturating_sub(b.day) <= 10)
        })
        .max_by_key(|&u| ds.long_term(u, day).len())
        .expect("a recently-travelling user exists");
    let last = *ds.long_term(user, day).last().unwrap();
    let city_name = |c: CityId| ds.world.cities[c.index()].name.clone();
    println!(
        "\nuser {:?} recently flew {} → {} (day {}); scoring day {day}",
        user,
        city_name(last.origin),
        city_name(last.dest),
        last.day
    );

    let candidates = heuristic_candidates(&ds, user, day, 40);
    let group = fx.group_for_serving(&ds, user, day, &candidates);
    let scores = model.score_group(&group);
    let mut ranked: Vec<(f32, (CityId, CityId))> = scores
        .iter()
        .zip(&candidates)
        .map(|(&(po, pd), &pair)| (model.serving_score(po, pd), pair))
        .collect();
    ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());

    println!("\nrecommended flights:");
    for (rank, (score, (o, d))) in ranked.iter().take(8).enumerate() {
        let mut notes = Vec::new();
        if *o == last.dest && *d == last.origin {
            notes.push("return leg of the recent trip (O&D unity)");
        }
        let dp = ds.world.cities[d.index()].pattern;
        let visited_same_pattern = ds
            .long_term(user, day)
            .iter()
            .any(|b| b.dest != *d && ds.world.cities[b.dest.index()].pattern == dp);
        if visited_same_pattern {
            notes.push("destination shares a pattern with visited cities (exploration)");
        }
        if ds.world.cities[o.index()].is_hub && *o != ds.world.users[user.index()].home {
            notes.push("departs from a cheaper hub (origin exploration)");
        }
        println!(
            "  {}. {} → {}  score {score:.4}{}",
            rank + 1,
            city_name(*o),
            city_name(*d),
            if notes.is_empty() {
                String::new()
            } else {
                format!("   [{}]", notes.join("; "))
            }
        );
    }

    // Quantify the unity effect: where does the exact return leg rank?
    let return_pos = ranked
        .iter()
        .position(|(_, (o, d))| *o == last.dest && *d == last.origin);
    match return_pos {
        Some(p) => println!(
            "\nthe return leg {} → {} ranks #{} of {} candidates",
            city_name(last.dest),
            city_name(last.origin),
            p + 1,
            ranked.len()
        ),
        None => println!("\nthe return leg was not recalled for this user"),
    }

    // Show the pattern vocabulary for context.
    println!("\ncity patterns in this world:");
    for p in Pattern::ALL {
        let members: Vec<String> = ds
            .world
            .cities
            .iter()
            .filter(|c| c.pattern == p)
            .take(4)
            .map(|c| c.name.clone())
            .collect();
        println!("  {:?}: {}…", p, members.join(", "));
    }
}
