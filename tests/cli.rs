//! Integration tests of the `odnet` CLI binary: train → eval → recommend
//! round-trips through a real process and a real checkpoint file.

use std::process::Command;

fn odnet() -> Command {
    Command::new(env!("CARGO_BIN_EXE_odnet"))
}

fn tmp_model_path(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("odnet_cli_test_{tag}_{}.json", std::process::id()));
    p
}

#[test]
fn train_eval_recommend_round_trip() {
    let model = tmp_model_path("roundtrip");
    let out = odnet()
        .args([
            "train",
            "--out",
            model.to_str().unwrap(),
            "--variant",
            "odnet-g",
            "--users",
            "80",
            "--cities",
            "12",
            "--epochs",
            "1",
        ])
        .output()
        .expect("spawn odnet train");
    assert!(
        out.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(model.exists(), "model file not written");

    let out = odnet()
        .args(["eval", "--model", model.to_str().unwrap()])
        .output()
        .expect("spawn odnet eval");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("AUC-O"),
        "eval output missing metrics: {stdout}"
    );
    assert!(stdout.contains("HR@5"));

    let out = odnet()
        .args([
            "recommend",
            "--model",
            model.to_str().unwrap(),
            "--user",
            "3",
            "--top",
            "4",
        ])
        .output()
        .expect("spawn odnet recommend");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("top-4 flights"), "got: {stdout}");
    // Four ranked lines with arrows.
    assert_eq!(stdout.matches("->").count(), 4, "got: {stdout}");

    let _ = std::fs::remove_file(model);
}

#[test]
fn helpful_errors_and_usage() {
    // No command → usage on stderr, nonzero exit.
    let out = odnet().output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));

    // Unknown command.
    let out = odnet().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());

    // eval without --model.
    let out = odnet().arg("eval").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--model"));

    // recommend with out-of-range user.
    let model = tmp_model_path("range");
    let ok = odnet()
        .args([
            "train",
            "--out",
            model.to_str().unwrap(),
            "--variant",
            "stl-g",
            "--users",
            "40",
            "--cities",
            "10",
            "--epochs",
            "1",
        ])
        .output()
        .expect("spawn");
    assert!(
        ok.status.success(),
        "{}",
        String::from_utf8_lossy(&ok.stderr)
    );
    let out = odnet()
        .args([
            "recommend",
            "--model",
            model.to_str().unwrap(),
            "--user",
            "9999",
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("out of range"));
    let _ = std::fs::remove_file(model);
}

#[test]
fn help_prints_usage_successfully() {
    let out = odnet().arg("help").output().expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("odnet train"));
}
