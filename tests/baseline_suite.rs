//! Cross-crate integration: every baseline runs through the shared
//! train/evaluate pipeline on both dataset families, and the cheap sanity
//! orderings hold (trained models beat chance; graph/exploitation signals
//! register).

use od_baselines::{BaselineConfig, CityMeta, GbdtBaseline, GbdtConfig, LstmBaseline, MostPop};
use od_bench::{checkin_dataset, fliggy_dataset, Scale};
use od_data::CheckinConfig;
use odnet_core::{evaluate_on_checkin, evaluate_on_fliggy, train, FeatureExtractor, OdScorer};

fn fx() -> FeatureExtractor {
    FeatureExtractor::new(8, 5)
}

#[test]
fn gbdt_beats_mostpop_on_fliggy() {
    let ds = fliggy_dataset(Scale::Smoke);
    let fx = fx();
    let groups = fx.groups_from_samples(&ds, &ds.train);
    let coords: Vec<od_hsg::GeoPoint> = ds.world.cities.iter().map(|c| c.coords).collect();
    let meta = CityMeta::from_groups(coords, &groups);

    let mostpop = MostPop::new(meta.clone());
    let pop_eval = evaluate_on_fliggy(&mostpop, &ds, &fx);

    let gbdt = GbdtBaseline::fit(meta, &groups, GbdtConfig::tiny());
    let gbdt_eval = evaluate_on_fliggy(&gbdt, &ds, &fx);

    assert!(
        gbdt_eval.ranking.mrr5 > pop_eval.ranking.mrr5,
        "GBDT MRR@5 {} must beat MostPop {}",
        gbdt_eval.ranking.mrr5,
        pop_eval.ranking.mrr5
    );
    assert!(gbdt_eval.auc_o > 0.6, "GBDT AUC-O {}", gbdt_eval.auc_o);
}

#[test]
fn lstm_trains_on_fliggy_above_chance() {
    let ds = fliggy_dataset(Scale::Smoke);
    let fx = fx();
    let groups = fx.groups_from_samples(&ds, &ds.train);
    let mut cfg = BaselineConfig::tiny();
    cfg.epochs = 3;
    let mut lstm = LstmBaseline::new(cfg, ds.world.num_users(), ds.world.num_cities());
    train(&mut lstm, &groups);
    let eval = evaluate_on_fliggy(&lstm, &ds, &fx);
    assert!(eval.auc_d > 0.6, "LSTM AUC-D {} near chance", eval.auc_d);
}

#[test]
fn checkin_pipeline_runs_for_neural_and_rule_methods() {
    let ds = checkin_dataset(Scale::Smoke, CheckinConfig::gowalla);
    let fx = fx();
    let groups = fx.checkin_groups(&ds, &ds.train);
    assert!(!groups.is_empty());
    let coords: Vec<od_hsg::GeoPoint> = ds.pois.iter().map(|p| p.coords).collect();
    let meta = CityMeta::from_groups(coords, &groups);

    let mostpop = MostPop::new(meta.clone());
    let pop_eval = evaluate_on_checkin(&mostpop, &ds, &fx);
    assert!(pop_eval.ranking.hr10 > 0.0);

    let mut cfg = BaselineConfig::tiny();
    cfg.epochs = 2;
    let mut lstm = LstmBaseline::new(cfg, ds.config.num_users, ds.config.num_pois);
    train(&mut lstm, &groups);
    let eval = evaluate_on_checkin(&lstm, &ds, &fx);
    assert!((0.0..=1.0).contains(&eval.auc_d));
    assert!(eval.ranking.hr10 >= eval.ranking.hr1);
}

#[test]
fn scorer_names_are_table_exact() {
    // The table generators key on these names; lock them.
    let ds = fliggy_dataset(Scale::Smoke);
    let fx = fx();
    let groups = fx.groups_from_samples(&ds, &ds.train);
    let coords: Vec<od_hsg::GeoPoint> = ds.world.cities.iter().map(|c| c.coords).collect();
    let meta = CityMeta::from_groups(coords, &groups);
    assert_eq!(MostPop::new(meta.clone()).name(), "MostPop");
    assert_eq!(
        GbdtBaseline::fit(meta, &groups[..20.min(groups.len())], GbdtConfig::tiny()).name(),
        "GBDT"
    );
}
