//! Cross-crate integration: full train → evaluate → serve pipelines over
//! the synthetic datasets, asserting the learnability floor that every
//! paper experiment rests on.

use od_bench::heuristic_candidates;
use od_data::{FliggyConfig, FliggyDataset};
use od_hsg::HsgBuilder;
use odnet_core::{evaluate_on_fliggy, train, FeatureExtractor, OdNetModel, OdnetConfig, Variant};

fn tiny_dataset() -> FliggyDataset {
    FliggyDataset::generate(FliggyConfig {
        num_users: 120,
        num_cities: 16,
        horizon_days: 500,
        eval_negatives: 19,
        ..FliggyConfig::default()
    })
}

fn tiny_model_cfg() -> OdnetConfig {
    OdnetConfig {
        embed_dim: 8,
        heads: 2,
        epochs: 3,
        workers: 2,
        ..OdnetConfig::default()
    }
}

fn build_model(variant: Variant, ds: &FliggyDataset) -> OdNetModel {
    let hsg = variant.uses_graph().then(|| {
        let coords = ds.world.cities.iter().map(|c| c.coords).collect();
        let mut b = HsgBuilder::new(ds.world.num_users(), coords);
        for it in ds.hsg_interactions() {
            b.add_interaction(it);
        }
        b.build()
    });
    OdNetModel::new(
        variant,
        tiny_model_cfg(),
        ds.world.num_users(),
        ds.world.num_cities(),
        hsg,
    )
}

#[test]
fn odnet_trains_and_beats_chance_clearly() {
    let ds = tiny_dataset();
    let cfg = tiny_model_cfg();
    let fx = FeatureExtractor::new(cfg.max_long_seq, cfg.max_short_seq);
    let mut model = build_model(Variant::Odnet, &ds);
    let groups = fx.groups_from_samples(&ds, &ds.train);
    let report = train(&mut model, &groups);
    assert!(
        report.final_loss() < report.epoch_losses[0],
        "loss must decrease: {:?}",
        report.epoch_losses
    );
    let eval = evaluate_on_fliggy(&model, &ds, &fx);
    // Chance HR@5 with 19 negatives is 5/20 = 0.25; AUC chance is 0.5.
    assert!(
        eval.auc_o > 0.65,
        "AUC-O {} too close to chance",
        eval.auc_o
    );
    assert!(
        eval.auc_d > 0.65,
        "AUC-D {} too close to chance",
        eval.auc_d
    );
    assert!(
        eval.ranking.hr5 > 0.35,
        "HR@5 {} too close to chance 0.25",
        eval.ranking.hr5
    );
}

#[test]
fn serving_pipeline_produces_ranked_flights() {
    let ds = tiny_dataset();
    let cfg = tiny_model_cfg();
    let fx = FeatureExtractor::new(cfg.max_long_seq, cfg.max_short_seq);
    let mut model = build_model(Variant::OdnetG, &ds);
    let groups = fx.groups_from_samples(&ds, &ds.train);
    train(&mut model, &groups);
    let day = ds.train_end_day();
    for user in (0..10u32).map(od_hsg::UserId) {
        let candidates = heuristic_candidates(&ds, user, day, 25);
        assert!(!candidates.is_empty());
        let group = fx.group_for_serving(&ds, user, day, &candidates);
        let scores = model.score_group(&group);
        assert_eq!(scores.len(), candidates.len());
        let combined: Vec<f32> = scores
            .iter()
            .map(|&(po, pd)| model.serving_score(po, pd))
            .collect();
        assert!(combined
            .iter()
            .all(|s| s.is_finite() && (0.0..=1.0).contains(s)));
        // Scores must discriminate (not all equal).
        let min = combined.iter().copied().fold(f32::INFINITY, f32::min);
        let max = combined.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        assert!(max > min, "degenerate constant scores for user {user:?}");
    }
}

#[test]
fn checkpoint_round_trip_preserves_scores() {
    let ds = tiny_dataset();
    let cfg = tiny_model_cfg();
    let fx = FeatureExtractor::new(cfg.max_long_seq, cfg.max_short_seq);
    let mut model = build_model(Variant::Odnet, &ds);
    let groups = fx.groups_from_samples(&ds, &ds.train);
    train(
        &mut model,
        &groups.iter().take(30).cloned().collect::<Vec<_>>(),
    );
    let case = fx.group_from_eval_case(&ds, &ds.eval_cases[0]);
    let before = model.score_group(&case);

    // Serialize, restore into a fresh same-config model, compare.
    let json = model.store.to_json();
    let mut restored = build_model(Variant::Odnet, &ds);
    restored.store = od_tensor::ParamStore::from_json(&json).expect("valid checkpoint");
    let after = restored.score_group(&case);
    assert_eq!(before, after, "checkpoint round-trip changed predictions");
}

#[test]
fn fixed_seed_training_is_deterministic() {
    let ds = tiny_dataset();
    let cfg = tiny_model_cfg();
    let fx = FeatureExtractor::new(cfg.max_long_seq, cfg.max_short_seq);
    let groups: Vec<_> = fx
        .groups_from_samples(&ds, &ds.train)
        .into_iter()
        .take(40)
        .collect();
    let score = |_: u32| -> Vec<(f32, f32)> {
        let mut cfg = tiny_model_cfg();
        cfg.workers = 1; // bit-exactness requires a fixed merge order
        let mut model = OdNetModel::new(
            Variant::OdnetG,
            cfg,
            ds.world.num_users(),
            ds.world.num_cities(),
            None,
        );
        train(&mut model, &groups);
        let case = fx.group_from_eval_case(&ds, &ds.eval_cases[0]);
        model.score_group(&case)
    };
    assert_eq!(score(0), score(1), "same seed must give identical models");
}

#[test]
fn all_four_variants_complete_the_pipeline() {
    let ds = tiny_dataset();
    let cfg = tiny_model_cfg();
    let fx = FeatureExtractor::new(cfg.max_long_seq, cfg.max_short_seq);
    let groups: Vec<_> = fx
        .groups_from_samples(&ds, &ds.train)
        .into_iter()
        .take(50)
        .collect();
    for variant in [
        Variant::Odnet,
        Variant::OdnetG,
        Variant::StlPlusG,
        Variant::StlG,
    ] {
        let mut model = build_model(variant, &ds);
        let report = train(&mut model, &groups);
        assert!(report.final_loss().is_finite(), "{variant:?} diverged");
        let eval = evaluate_on_fliggy(&model, &ds, &fx);
        assert!(eval.ranking.hr10 >= eval.ranking.hr5);
        assert!((0.0..=1.0).contains(&eval.auc_o));
    }
}

#[test]
fn full_checkpoint_api_round_trips_a_graph_model() {
    let ds = tiny_dataset();
    let cfg = tiny_model_cfg();
    let fx = FeatureExtractor::new(cfg.max_long_seq, cfg.max_short_seq);
    let mut model = build_model(Variant::Odnet, &ds);
    let groups: Vec<_> = fx
        .groups_from_samples(&ds, &ds.train)
        .into_iter()
        .take(25)
        .collect();
    train(&mut model, &groups);
    let case = fx.group_from_eval_case(&ds, &ds.eval_cases[0]);
    let before = model.score_group(&case);
    let theta_before = model.theta();

    let json = model.save_json(ds.world.num_users(), ds.world.num_cities());
    // Rebuild the HSG exactly as at training time (the checkpoint carries
    // parameters only).
    let coords = ds.world.cities.iter().map(|c| c.coords).collect();
    let mut b = od_hsg::HsgBuilder::new(ds.world.num_users(), coords);
    for it in ds.hsg_interactions() {
        b.add_interaction(it);
    }
    let restored = OdNetModel::load_json(&json, Some(b.build())).expect("valid checkpoint");
    assert_eq!(restored.score_group(&case), before);
    assert_eq!(restored.theta(), theta_before);
    assert_eq!(restored.variant, Variant::Odnet);
}

#[test]
fn checkpoint_load_rejects_missing_hsg_and_garbage() {
    let ds = tiny_dataset();
    let model = build_model(Variant::Odnet, &ds);
    let json = model.save_json(ds.world.num_users(), ds.world.num_cities());
    // Graph variant without HSG must fail loudly.
    assert!(OdNetModel::load_json(&json, None).is_err());
    // Garbage must fail as a parse error, not a panic.
    assert!(OdNetModel::load_json("{not json", None).is_err());
}
